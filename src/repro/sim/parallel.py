"""Fault-tolerant, observable process-parallel sweep engine.

Simulating one experiment is inherently sequential (a cache's state is
a chain), but a *sweep* is embarrassingly parallel: every
(algorithm, setting, order) cell is independent.  This module fans the
cells of :func:`repro.sim.sweep.order_sweep` /
:func:`~repro.sim.sweep.ratio_sweep` out over a
:class:`~concurrent.futures.ProcessPoolExecutor` — successful cells are
bit-identical to the serial versions (tests assert it), only wall-clock
changes.

Unlike a bare ``pool.map``, the engine treats the pool as unreliable
infrastructure:

* **Bounded in-flight dispatch** — at most ``workers`` chunk tasks are
  outstanding, so every submitted task starts immediately and per-task
  deadlines are meaningful.
* **Shared state ships once** — the machine(s), the per-series
  algorithm/setting/kwargs table and the fault plan travel through the
  pool *initializer*, not with every cell; a submitted cell is a tiny
  index tuple, and first-round cells are submitted in chunks to
  amortize IPC further.
* **Per-cell timeouts** — a chunk gets ``cell_timeout × len(chunk)``
  seconds; an overdue chunk's worker is presumed hung, the pool is
  killed and rebuilt, and the chunk's cells are charged one attempt.
* **Bounded retry with exponential backoff** — a failed cell is retried
  (individually, never re-chunked) up to ``retries`` times, waiting up
  to ``backoff · 2^(attempt-1)`` seconds between attempts with
  deterministic per-cell jitter (:class:`~repro.sim.retrypolicy.BackoffPolicy`)
  so many cells failing together do not retry in lockstep.
* **Graceful degradation** — a worker crash (``BrokenProcessPool``)
  charges the cells that were in flight and rebuilds the pool; when a
  pool cannot be (re)built at all, remaining cells run serially
  in-process — except suspected worker-killers (cells whose last
  failure was a crash or timeout), which are *skipped* with an explicit
  record rather than risking the host process.
* **Telemetry** — every cell ends as an ``ok``/``failed``/``skipped``
  :class:`~repro.sim.telemetry.CellRecord` inside a
  :class:`~repro.sim.telemetry.RunManifest` (attempt counts, per-cell
  wall time, worker utilization, pool rebuilds) attached to the
  returned :class:`~repro.sim.results.SweepResult` and optionally
  written to JSON.
* **Durability** — with ``run_dir=`` the sweep is backed by a
  :class:`~repro.store.rundir.RunStore`: every completed cell is
  flushed to an append-only, checksummed checkpoint log the moment it
  finishes, so a SIGKILL/OOM/power loss costs at most the cell in
  flight.  ``resume=True`` reloads ``ok`` cells by deterministic
  fingerprint (engine knobs excluded) and dispatches only the rest;
  SIGINT/SIGTERM drain in-flight cells, flush the checkpoint and write
  a partial manifest instead of aborting.

See ``docs/SWEEPS.md`` and ``docs/RUNSTORE.md`` for the full semantics.
"""

from __future__ import annotations

import os
import signal
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cache import replay as replay_engine
from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.sim.faults import FaultPlan, fire
from repro.sim.results import ExperimentResult, SweepResult
from repro.sim.retrypolicy import PERMANENT_ERRORS, BackoffPolicy
from repro.sim.runner import reset_fallback_warnings, run_experiment
from repro.sim.sweep import Entry, resolve_entries
from repro.sim.telemetry import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    CellRecord,
    RunManifest,
)
from repro.store.checkpoint import CheckpointWriter, cell_fingerprint
from repro.store.rundir import (
    STATUS_COMPLETE,
    STATUS_INCOMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    RunStore,
)
from repro.store.serde import result_from_dict, result_to_dict

#: One submitted cell: (label, x-index, machine-index, m, n, z, attempt).
#: Everything heavy is resolved worker-side from the initializer state.
CellSpec = Tuple[str, int, int, int, int, int, int]

#: One per-cell outcome reported by a worker:
#: (label, index, ok, payload, pid, wall_s).  ``payload`` is the
#: ExperimentResult when ok, else (error_type, error_message, retryable).
CellOutcome = Tuple[str, int, bool, Any, int, float]

#: Errors that re-running cannot fix (shared with the fabric engine;
#: see :mod:`repro.sim.retrypolicy`).
_PERMANENT_ERRORS = PERMANENT_ERRORS

#: Failure types that mark a cell as a suspected worker-killer: the
#: in-process fallback refuses to re-run these (a crash would take the
#: host process down, a hang could never be interrupted).
_WORKER_KILLER_ERRORS = frozenset({"BrokenProcessPool", "TimeoutError"})

#: How often a store-backed engine wakes from blocking waits to notice
#: a pending SIGINT/SIGTERM drain request.
_SIGNAL_POLL_S = 0.25


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-sweep state installed once per worker by the pool initializer.
_WORKER_MACHINES: Sequence[MulticoreMachine] = ()
_WORKER_ENTRIES: Dict[str, Tuple[str, str, Dict[str, Any]]] = {}
_WORKER_FAULTS: Optional[FaultPlan] = None


def _init_worker(
    machines: Sequence[MulticoreMachine],
    entries: Dict[str, Tuple[str, str, Dict[str, Any]]],
    fault_plan: Optional[FaultPlan],
    trace_tier: Optional[str] = None,
) -> None:
    """Pool initializer: receive the shared per-sweep state exactly once."""
    global _WORKER_MACHINES, _WORKER_ENTRIES, _WORKER_FAULTS
    _WORKER_MACHINES = machines
    _WORKER_ENTRIES = entries
    _WORKER_FAULTS = fault_plan
    # Workers of a store-backed sweep share compiled traces through the
    # run dir's on-disk tier: the first worker to need a trace compiles
    # and stores it, siblings memmap it instead of recompiling.
    replay_engine.configure_trace_tier(trace_tier)
    # A store-backed engine traps SIGINT/SIGTERM in the host process —
    # and forked workers inherit those handlers.  A worker that treats
    # SIGTERM as "set the drain flag" can never be torn down by
    # ``_kill_pool`` (``process.terminate()`` would be a no-op on a hung
    # worker, wedging the executor's manager thread until interpreter
    # exit).  Reset: SIGTERM kills the worker again; SIGINT is ignored
    # so a terminal Ctrl-C reaches only the host, which drains
    # gracefully instead of losing in-flight cells to a broken pool.
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover — exotic platforms
        pass


def _execute_cells(
    cells: Sequence[CellSpec],
    machines: Sequence[MulticoreMachine],
    entries: Dict[str, Tuple[str, str, Dict[str, Any]]],
    fault_plan: Optional[FaultPlan],
) -> List[CellOutcome]:
    """Run a chunk of cells against explicit state; never raises for a
    cell-level error — failures come back as data so one bad cell cannot
    take its chunk-mates' results with it."""
    pid = os.getpid()
    outcomes: List[CellOutcome] = []
    for label, index, machine_idx, m, n, z, attempt in cells:
        start = time.perf_counter()
        try:
            spec = fault_plan.get((label, index)) if fault_plan else None
            if spec is not None:
                fire(spec, attempt)
            algorithm, setting, kwargs = entries[label]
            result = run_experiment(
                algorithm, machines[machine_idx], m, n, z, setting, **kwargs
            )
            result.attempts = attempt
            outcomes.append(
                (label, index, True, result, pid, time.perf_counter() - start)
            )
        except Exception as exc:  # noqa: BLE001 — cell isolation is the point
            retryable = not isinstance(exc, _PERMANENT_ERRORS)
            outcomes.append(
                (
                    label,
                    index,
                    False,
                    (type(exc).__name__, str(exc), retryable),
                    pid,
                    time.perf_counter() - start,
                )
            )
    return outcomes


def _run_chunk(cells: Sequence[CellSpec]) -> List[CellOutcome]:
    """Worker entry point: run one chunk against the initializer state."""
    return _execute_cells(cells, _WORKER_MACHINES, _WORKER_ENTRIES, _WORKER_FAULTS)


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


def _resolve_workers(workers: Optional[int]) -> int:
    """Validate an explicit worker count, defaulting to the CPU count.

    Rejecting ``workers < 1`` here turns an opaque
    ``ProcessPoolExecutor`` ``ValueError`` traceback into the library's
    own :class:`~repro.exceptions.ConfigurationError`.
    """
    if workers is None:
        return _default_workers()
    if workers < 1:
        raise ConfigurationError(
            f"need at least one worker process, got workers={workers}"
        )
    return workers


def _kill_pool(pool: Executor) -> None:
    """Tear a pool down even when a worker is wedged.

    A hung worker never drains its call item, so a plain ``shutdown``
    would block forever; terminate the worker processes first (internal
    attribute, but stable across CPython 3.8–3.13), then release the
    executor without waiting.
    """
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        process.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


class _SweepEngine:
    """One engine run: dispatch, retry, degrade, record."""

    def __init__(
        self,
        *,
        variable: str,
        xs: Sequence[Any],
        labels: Sequence[str],
        cells: Sequence[CellSpec],
        machines: Sequence[MulticoreMachine],
        entries: Dict[str, Tuple[str, str, Dict[str, Any]]],
        workers: int,
        cell_timeout: Optional[float],
        retries: int,
        backoff: float,
        chunksize: Optional[int],
        fault_plan: Optional[FaultPlan],
        serial_fallback: bool,
        pool_factory: Optional[Callable[..., Executor]],
        store: Optional[RunStore] = None,
        resume: bool = False,
        drain_grace_s: float = 5.0,
    ) -> None:
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0, got {retries}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ConfigurationError(
                f"cell_timeout must be positive, got {cell_timeout}"
            )
        if drain_grace_s < 0:
            raise ConfigurationError(
                f"drain_grace_s must be >= 0, got {drain_grace_s}"
            )
        self.variable = variable
        self.xs = list(xs)
        self.labels = list(labels)
        self.machines = list(machines)
        self.entries = entries
        self.workers = workers
        self.cell_timeout = cell_timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_policy = BackoffPolicy(base_s=backoff)
        self.fault_plan = fault_plan
        self.serial_fallback = serial_fallback
        self.pool_factory = pool_factory or ProcessPoolExecutor
        self.store = store
        self.resume = resume
        self.drain_grace_s = drain_grace_s
        #: On-disk compiled-trace tier shared by host + workers (under
        #: the run dir, so it lives and dies with the run artifacts).
        self.trace_tier: Optional[str] = (
            str(store.root / "traces") if store is not None else None
        )
        self.writer: Optional[CheckpointWriter] = None
        #: Signal number once SIGINT/SIGTERM asked the run to drain.
        self.interrupt: Optional[int] = None
        self._old_handlers: Dict[int, Any] = {}

        self.records: Dict[Tuple[str, int], CellRecord] = {}
        for label, index, *_rest in cells:
            self.records[(label, index)] = CellRecord(
                label=label, index=index, x=self.xs[index], status=STATUS_SKIPPED
            )
        self.results: Dict[Tuple[str, int], ExperimentResult] = {}
        self.outstanding = set(self.records)
        self.manifest = RunManifest(
            variable=variable,
            xs=self.xs,
            workers=workers,
            cell_timeout_s=cell_timeout,
            retries=retries,
            backoff_s=backoff,
            chunksize=1,  # finalized below once pending cells are known
        )

        self.fingerprints: Dict[Tuple[str, int], str] = {}
        if store is not None:
            for spec in cells:
                self.fingerprints[(spec[0], spec[1])] = self._cell_fp(spec)
            if resume:
                self._restore_from_checkpoint()

        pending = [s for s in cells if (s[0], s[1]) in self.outstanding]
        if chunksize is None:
            chunksize = max(1, len(pending) // (workers * 4))
        self.chunksize = max(1, chunksize)
        self.manifest.chunksize = self.chunksize
        self.ready: Deque[List[CellSpec]] = deque(
            [
                list(pending[i : i + self.chunksize])
                for i in range(0, len(pending), self.chunksize)
            ]
        )
        self.waiting_retry: List[Tuple[float, CellSpec]] = []
        self.inflight: Dict[Future[List[CellOutcome]], Tuple[List[CellSpec], Optional[float]]] = {}

    # -- durability -----------------------------------------------------
    def _cell_fp(self, spec: CellSpec) -> str:
        """Deterministic result fingerprint of one cell (engine knobs excluded)."""
        label, index, machine_idx, m, n, z, _attempt = spec
        algorithm, setting, kwargs = self.entries[label]
        fp_kwargs = {k: v for k, v in kwargs.items() if k not in ("engine", "strict_engine")}
        return cell_fingerprint(
            algorithm=algorithm,
            setting=setting,
            kwargs=fp_kwargs,
            machine=self.machines[machine_idx],
            variable=self.variable,
            x=self.xs[index],
            m=m,
            n=n,
            z=z,
        )

    def _restore_from_checkpoint(self) -> None:
        """Reload ``ok`` cells from the run directory's checkpoint log.

        A restored cell is finalized without dispatch and flagged
        ``resumed``; quarantined (corrupt) records are counted and their
        cells recompute.  Failure records never restore — a resumed
        sweep re-runs every failed/skipped/missing cell.
        """
        assert self.store is not None
        loaded = self.store.load_checkpoint()
        self.manifest.quarantined_records = len(loaded.quarantined)
        ok = loaded.ok_records()
        for key, fp in self.fingerprints.items():
            record = ok.get(fp)
            if record is None:
                continue
            try:
                result: ExperimentResult = result_from_dict(record["result"])
            except (KeyError, TypeError, ValueError):
                # A sealed record whose payload still doesn't deserialize
                # is treated exactly like a checksum mismatch: recompute.
                self.manifest.quarantined_records += 1
                continue
            cell = self.records[key]
            cell.status = STATUS_OK
            cell.attempts = result.attempts
            cell.wall_s = float(record.get("wall_s", 0.0))
            cell.worker = result.worker
            cell.resumed = True
            cell.engine_fallback = result.engine_fallback
            cell.kernel = result.kernel
            cell.trace_source = result.trace_source
            self.results[key] = result
            self.outstanding.discard(key)
            self.manifest.resumed_cells += 1

    def _checkpoint(
        self,
        key: Tuple[str, int],
        status: str,
        *,
        result: Optional[ExperimentResult] = None,
    ) -> None:
        """Flush one finalized cell to the checkpoint log (durable on return)."""
        if self.writer is None:
            return
        record = self.records[key]
        payload: Dict[str, Any] = {
            "fp": self.fingerprints[key],
            "label": key[0],
            "index": key[1],
            "x": self.xs[key[1]],
            "status": status,
            "attempts": record.attempts,
            "wall_s": round(record.wall_s, 6),
        }
        if result is not None:
            payload["result"] = result_to_dict(result)
        else:
            payload["error_type"] = record.error_type
            payload["error"] = record.error
        self.writer.append(payload)

    # -- signals ---------------------------------------------------------
    def _on_signal(self, signum: int, _frame: Any) -> None:
        if self.interrupt is not None:
            # Second signal: the user means it — abort hard.
            raise KeyboardInterrupt
        self.interrupt = signum

    def _signal_name(self) -> Optional[str]:
        if self.interrupt is None:
            return None
        try:
            return signal.Signals(self.interrupt).name
        except ValueError:
            return f"signal {self.interrupt}"

    def _install_signal_handlers(self) -> None:
        """Trap SIGINT/SIGTERM for graceful draining (store-backed runs).

        Only installable from the main thread; elsewhere the engine
        keeps the default behaviour (the run is still crash-safe — the
        checkpoint is flushed per cell)."""
        if self.store is None:
            return
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old_handlers[sig] = signal.signal(sig, self._on_signal)
            except (ValueError, OSError):
                pass

    def _restore_signal_handlers(self) -> None:
        for sig, handler in self._old_handlers.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
        self._old_handlers = {}

    # -- bookkeeping ----------------------------------------------------
    def _finalize_ok(
        self, label: str, index: int, result: ExperimentResult, pid: int, wall: float
    ) -> None:
        record = self.records[(label, index)]
        record.status = STATUS_OK
        record.attempts = result.attempts
        record.wall_s += wall
        record.worker = pid
        record.error_type = None
        record.error = None
        record.engine_fallback = result.engine_fallback
        record.kernel = result.kernel
        record.trace_source = result.trace_source
        self.results[(label, index)] = result
        self.outstanding.discard((label, index))
        self._checkpoint((label, index), STATUS_OK, result=result)

    def _charge_failure(
        self,
        spec: CellSpec,
        error_type: str,
        error: str,
        retryable: bool,
        *,
        pid: Optional[int] = None,
        wall: float = 0.0,
    ) -> None:
        """One attempt of a cell ended badly: retry with backoff or fail."""
        label, index = spec[0], spec[1]
        key = (label, index)
        if key not in self.outstanding:
            return  # already finalized (defensive: stale duplicate)
        record = self.records[key]
        attempt = spec[6]
        record.attempts = max(record.attempts, attempt)
        record.wall_s += wall
        record.error_type = error_type
        record.error = error
        if pid is not None:
            record.worker = pid
        if retryable and attempt <= self.retries:
            delay = self.backoff_policy.delay(attempt, key=f"{label}:{index}")
            retry_spec = spec[:6] + (attempt + 1,)
            self.waiting_retry.append((time.monotonic() + delay, retry_spec))
        else:
            record.status = STATUS_FAILED
            self.outstanding.discard(key)
            self._checkpoint(key, STATUS_FAILED)

    def _skip(
        self, spec: CellSpec, reason: str, *, error_type: str = "Skipped"
    ) -> None:
        label, index = spec[0], spec[1]
        key = (label, index)
        if key not in self.outstanding:
            return
        record = self.records[key]
        record.status = STATUS_SKIPPED
        record.error = (
            f"{reason}" + (f" (last error: {record.error})" if record.error else "")
        )
        if record.error_type is None:
            record.error_type = error_type
        self.outstanding.discard(key)
        self._checkpoint(key, STATUS_SKIPPED)

    # -- pool management ------------------------------------------------
    def _make_pool(self) -> Optional[Executor]:
        try:
            return self.pool_factory(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(
                    self.machines,
                    self.entries,
                    self.fault_plan,
                    self.trace_tier,
                ),
            )
        except Exception:  # noqa: BLE001 — degrade, never abort the sweep
            return None

    def _handle_broken_pool(self) -> None:
        """Every in-flight chunk died with the pool: charge and retry."""
        for future, (chunk, _deadline) in list(self.inflight.items()):
            future.cancel()
            for spec in chunk:
                self._charge_failure(
                    spec,
                    "BrokenProcessPool",
                    "worker process died while the cell was in flight",
                    retryable=True,
                )
        self.inflight.clear()
        self.manifest.pool_rebuilds += 1

    def _handle_timeouts(self, overdue: List[Future[List[CellOutcome]]]) -> None:
        """Overdue chunks mean wedged workers: charge them, requeue the
        innocent in-flight chunks uncharged, and replace the pool."""
        assert self.cell_timeout is not None
        for future in overdue:
            chunk, _deadline = self.inflight.pop(future)
            future.cancel()
            budget = self.cell_timeout * len(chunk)
            for spec in chunk:
                self._charge_failure(
                    spec,
                    "TimeoutError",
                    f"chunk of {len(chunk)} cell(s) exceeded its "
                    f"{budget:.3g}s budget ({self.cell_timeout:.3g}s per cell)",
                    retryable=True,
                )
        for future, (chunk, _deadline) in list(self.inflight.items()):
            future.cancel()
            self.ready.appendleft(chunk)
        self.inflight.clear()
        self.manifest.pool_rebuilds += 1

    # -- serial degradation ---------------------------------------------
    def _run_serial_fallback(self) -> None:
        """Run every remaining cell in-process (no pool available).

        Suspected worker-killers — cells whose last failure was a crash
        or a timeout — are skipped with an explicit record: re-running
        them here could kill or wedge the host process.
        """
        self.manifest.serial_fallback = True
        pending: List[CellSpec] = [
            spec for chunk in self.ready for spec in chunk
        ] + [spec for _when, spec in self.waiting_retry]
        self.ready.clear()
        self.waiting_retry = []
        for spec in sorted(pending, key=lambda s: (s[0], s[1])):
            key = (spec[0], spec[1])
            if key not in self.outstanding:
                continue
            if self.interrupt is not None:
                self._skip(
                    spec,
                    f"interrupted by {self._signal_name()} before the cell ran",
                    error_type="Interrupted",
                )
                continue
            record = self.records[key]
            if record.error_type in _WORKER_KILLER_ERRORS:
                self._skip(
                    spec,
                    "not re-run in-process: previous attempt crashed or "
                    "hung a worker",
                )
                continue
            attempt = spec[6]
            while key in self.outstanding and self.interrupt is None:
                outcome = _execute_cells(
                    [spec[:6] + (attempt,)],
                    self.machines,
                    self.entries,
                    self.fault_plan,
                )[0]
                label, index, ok, payload, pid, wall = outcome
                self.manifest.record_execution(pid, wall)
                if ok:
                    self._finalize_ok(label, index, payload, pid, wall)
                else:
                    error_type, error, retryable = payload
                    serial_spec = spec[:6] + (attempt,)
                    if retryable and attempt <= self.retries:
                        time.sleep(
                            self.backoff_policy.delay(attempt, key=f"{label}:{index}")
                        )
                    self._charge_failure(
                        serial_spec, error_type, error, retryable, pid=pid, wall=0.0
                    )
                    attempt += 1

    # -- main loop -------------------------------------------------------
    def run(self) -> SweepResult:
        started = time.perf_counter()
        self._prepare_store()
        self._install_signal_handlers()
        # The host shares the run dir's trace tier with its workers
        # (serial fallback and in-process cells hit the same entries);
        # restored afterwards so one sweep doesn't leak its tier into
        # the next caller's process-global replay configuration.
        previous_tier = replay_engine.trace_tier_root()
        if self.trace_tier is not None:
            replay_engine.configure_trace_tier(self.trace_tier)
        try:
            if self.outstanding:
                pool = self._make_pool()
                if pool is None and self.serial_fallback:
                    self._run_serial_fallback()
                elif pool is None:
                    for key in sorted(self.outstanding):
                        record = self.records[key]
                        record.error_type = "PoolUnavailable"
                        record.error = "process pool could not be created"
                        self.outstanding.discard(key)
                        self._checkpoint(key, STATUS_SKIPPED)
                else:
                    try:
                        self._dispatch_loop(pool)
                    finally:
                        _kill_pool(pool)
            if self.interrupt is not None:
                self.manifest.interrupted = self._signal_name()
                for key in sorted(self.outstanding):
                    self._skip(
                        self._spec_for(key),
                        f"interrupted by {self._signal_name()}",
                        error_type="Interrupted",
                    )
        finally:
            if self.trace_tier is not None:
                replay_engine.configure_trace_tier(previous_tier)
            self._restore_signal_handlers()
            if self.writer is not None:
                self.writer.close()
                self.writer = None
        self.manifest.elapsed_s = time.perf_counter() - started
        sweep = self._assemble()
        self._finalize_store()
        return sweep

    def _prepare_store(self) -> None:
        """Stamp ``run.json``, open the checkpoint log for appending."""
        if self.store is None:
            return
        config = {
            "variable": self.variable,
            "xs": self.xs,
            "labels": self.labels,
            "engine": {
                "workers": self.workers,
                "cell_timeout_s": self.cell_timeout,
                "retries": self.retries,
                "backoff_s": self.backoff,
                "chunksize": self.chunksize,
            },
        }
        if self.resume and self.store.exists():
            meta = self.store.load_meta() or {}
            self.store.update_meta(
                status=STATUS_RUNNING,
                resumes=int(meta.get("resumes", 0)) + 1,
                **config,
            )
        else:
            self.store.initialize(config)
        self.writer = self.store.checkpoint_writer()

    def _finalize_store(self) -> None:
        """Write the manifest and final status into the run directory."""
        if self.store is None:
            return
        self.manifest.write(self.store.manifest_path)
        counts = self.manifest.counts()
        if self.manifest.interrupted is not None:
            status = STATUS_INTERRUPTED
        elif counts[STATUS_FAILED] or counts[STATUS_SKIPPED]:
            status = STATUS_INCOMPLETE
        else:
            status = STATUS_COMPLETE
        self.store.update_meta(
            status=status,
            cell_counts=counts,
            resumed_cells=self.manifest.resumed_cells,
            interrupted=self.manifest.interrupted,
            elapsed_s=round(self.manifest.elapsed_s, 6),
        )

    def _dispatch_loop(self, pool: Executor) -> None:
        while self.outstanding:
            if self.interrupt is not None:
                self._drain(pool)
                return
            now = time.monotonic()
            # Promote retries whose backoff has elapsed.
            due = [spec for when, spec in self.waiting_retry if when <= now]
            self.waiting_retry = [
                (when, spec) for when, spec in self.waiting_retry if when > now
            ]
            for spec in due:
                self.ready.append([spec])

            # Keep at most `workers` chunks outstanding so every task
            # starts immediately and submit-time deadlines are honest.
            broken = False
            while self.ready and len(self.inflight) < self.workers:
                chunk = self.ready.popleft()
                deadline = (
                    now + self.cell_timeout * len(chunk)
                    if self.cell_timeout is not None
                    else None
                )
                try:
                    future = pool.submit(_run_chunk, chunk)
                except BrokenProcessPool:
                    self.ready.appendleft(chunk)
                    broken = True
                    break
                except RuntimeError:
                    # shutdown executor (e.g. after a kill): rebuild
                    self.ready.appendleft(chunk)
                    broken = True
                    break
                self.inflight[future] = (chunk, deadline)

            if broken:
                self._handle_broken_pool()
                _kill_pool(pool)
                replacement = self._make_pool()
                if replacement is None:
                    if self.serial_fallback:
                        self._run_serial_fallback()
                    else:
                        for key in sorted(self.outstanding):
                            self._skip(
                                self._spec_for(key), "process pool unavailable"
                            )
                    return
                pool = replacement
                continue

            if not self.inflight:
                if self.waiting_retry:
                    next_due = min(when for when, _spec in self.waiting_retry)
                    pause = max(0.0, next_due - time.monotonic())
                    if self.store is not None:
                        # Stay responsive to SIGINT/SIGTERM drains.
                        pause = min(pause, _SIGNAL_POLL_S)
                    time.sleep(pause)
                    continue
                break  # defensive: nothing queued, nothing running

            done = self._wait_some()
            pool_broke = self._process_done(done)
            if pool_broke:
                self._handle_broken_pool()
                _kill_pool(pool)
                replacement = self._make_pool()
                if replacement is None:
                    if self.serial_fallback:
                        self._run_serial_fallback()
                    else:
                        for key in sorted(self.outstanding):
                            self._skip(
                                self._spec_for(key), "process pool unavailable"
                            )
                    return
                pool = replacement
                continue

            now = time.monotonic()
            overdue = [
                future
                for future, (_chunk, deadline) in self.inflight.items()
                if deadline is not None and now >= deadline and not future.done()
            ]
            if overdue:
                self._handle_timeouts(overdue)
                _kill_pool(pool)
                replacement = self._make_pool()
                if replacement is None:
                    if self.serial_fallback:
                        self._run_serial_fallback()
                    else:
                        for key in sorted(self.outstanding):
                            self._skip(
                                self._spec_for(key), "process pool unavailable"
                            )
                    return
                pool = replacement

    def _spec_for(self, key: Tuple[str, int]) -> CellSpec:
        """Reconstruct a minimal spec for bookkeeping-only paths."""
        record = self.records[key]
        return (key[0], key[1], 0, 0, 0, 0, max(record.attempts, 1))

    def _wait_some(self) -> List[Future[List[CellOutcome]]]:
        """Block until progress: a completion, a deadline, or a due retry."""
        now = time.monotonic()
        horizons = [
            deadline
            for _chunk, deadline in self.inflight.values()
            if deadline is not None
        ]
        horizons.extend(when for when, _spec in self.waiting_retry)
        timeout = max(0.0, min(horizons) - now) if horizons else None
        if self.store is not None:
            # A store-backed run traps SIGINT/SIGTERM; wake periodically
            # so the drain starts promptly even when nothing completes.
            timeout = _SIGNAL_POLL_S if timeout is None else min(timeout, _SIGNAL_POLL_S)
        done, _pending = wait(
            set(self.inflight), timeout=timeout, return_when=FIRST_COMPLETED
        )
        return list(done)

    def _drain(self, pool: Executor) -> None:
        """Graceful shutdown: finish in-flight chunks, dispatch nothing new.

        In-flight chunks get ``drain_grace_s`` to complete and be
        checkpointed; whatever is still running then (or queued, or
        waiting on a retry) is cancelled and recorded as an explicit
        ``skipped`` cell with ``error_type="Interrupted"`` — the caller
        (:meth:`run`) stamps those records after the drain."""
        deadline = time.monotonic() + self.drain_grace_s
        while self.inflight and time.monotonic() < deadline:
            budget = max(0.0, deadline - time.monotonic())
            done, _pending = wait(
                set(self.inflight),
                timeout=min(budget, _SIGNAL_POLL_S),
                return_when=FIRST_COMPLETED,
            )
            if done and self._process_done(list(done)):
                self._handle_broken_pool()
                break
        for future, (_chunk, _deadline) in list(self.inflight.items()):
            future.cancel()
        self.inflight.clear()
        _kill_pool(pool)

    def _process_done(self, done: List[Future[List[CellOutcome]]]) -> bool:
        """Fold completed futures into records; returns pool-broke."""
        pool_broke = False
        for future in done:
            chunk, _deadline = self.inflight.pop(future)
            try:
                outcomes = future.result()
            except BrokenProcessPool:
                pool_broke = True
                for spec in chunk:
                    self._charge_failure(
                        spec,
                        "BrokenProcessPool",
                        "worker process died while the cell was in flight",
                        retryable=True,
                    )
            except Exception as exc:  # noqa: BLE001 — e.g. unpicklable result
                for spec in chunk:
                    self._charge_failure(
                        spec, type(exc).__name__, str(exc), retryable=True
                    )
            else:
                for label, index, ok, payload, pid, wall in outcomes:
                    self.manifest.record_execution(pid, wall)
                    if ok:
                        self._finalize_ok(label, index, payload, pid, wall)
                    else:
                        error_type, error, retryable = payload
                        spec = next(
                            s for s in chunk if s[0] == label and s[1] == index
                        )
                        self._charge_failure(
                            spec, error_type, error, retryable, pid=pid, wall=wall
                        )
        return pool_broke

    def _assemble(self) -> SweepResult:
        sweep = SweepResult(variable=self.variable, xs=list(self.xs))
        buckets: Dict[str, List[Optional[ExperimentResult]]] = {
            label: [None] * len(self.xs) for label in self.labels
        }
        for (label, index), result in self.results.items():
            buckets[label][index] = result
        for label in self.labels:
            sweep.add(label, buckets[label])
        self.manifest.cells = list(self.records.values())
        sweep.failures = [
            record
            for record in self.records.values()
            if record.status != STATUS_OK
        ]
        sweep.manifest = self.manifest
        sweep.interrupted = self.manifest.interrupted
        return sweep


def _run_engine_sweep(
    *,
    variable: str,
    xs: Sequence[Any],
    labels: Sequence[str],
    cells: Sequence[CellSpec],
    machines: Sequence[MulticoreMachine],
    entries: Dict[str, Tuple[str, str, Dict[str, Any]]],
    workers: Optional[int],
    cell_timeout: Optional[float],
    retries: int,
    backoff: float,
    chunksize: Optional[int],
    fault_plan: Optional[FaultPlan],
    serial_fallback: bool,
    manifest_path: Optional[Union[str, Path]],
    pool_factory: Optional[Callable[..., Executor]],
    run_dir: Optional[Union[str, Path]],
    resume: bool,
    drain_grace_s: float,
) -> SweepResult:
    if resume and run_dir is None:
        raise ConfigurationError("resume=True requires a run_dir")
    engine = _SweepEngine(
        variable=variable,
        xs=xs,
        labels=labels,
        cells=cells,
        machines=machines,
        entries=entries,
        workers=_resolve_workers(workers),
        cell_timeout=cell_timeout,
        retries=retries,
        backoff=backoff,
        chunksize=chunksize,
        fault_plan=fault_plan,
        serial_fallback=serial_fallback,
        pool_factory=pool_factory,
        store=RunStore(run_dir) if run_dir is not None else None,
        resume=resume,
        drain_grace_s=drain_grace_s,
    )
    sweep = engine.run()
    if manifest_path is not None and sweep.manifest is not None:
        sweep.manifest.write(manifest_path)
    return sweep


# ----------------------------------------------------------------------
# Public sweeps
# ----------------------------------------------------------------------
def parallel_order_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    orders: Sequence[int],
    *,
    workers: Optional[int] = None,
    check: bool = False,
    inclusive: bool = False,
    policy: str = "lru",
    engine: str = "replay",
    strict_engine: bool = False,
    cell_timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.1,
    chunksize: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    serial_fallback: bool = True,
    manifest_path: Optional[Union[str, Path]] = None,
    pool_factory: Optional[Callable[..., Executor]] = None,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    drain_grace_s: float = 5.0,
) -> SweepResult:
    """Fault-tolerant parallel equivalent of :func:`repro.sim.sweep.order_sweep`.

    With ``run_dir`` the sweep is durably checkpointed per cell;
    ``resume=True`` reloads completed cells from that directory and
    dispatches only the rest (see ``docs/RUNSTORE.md``).
    """
    reset_fallback_warnings()
    resolved = resolve_entries(entries)
    labels = [label for _a, _s, _p, label in resolved]
    entry_table: Dict[str, Tuple[str, str, Dict[str, Any]]] = {}
    cells: List[CellSpec] = []
    for algorithm, setting, params, label in resolved:
        kwargs: Dict[str, Any] = dict(
            check=check,
            inclusive=inclusive,
            policy=policy,
            engine=engine,
            strict_engine=strict_engine,
            **params,
        )
        entry_table[label] = (algorithm, setting, kwargs)
        for index, order in enumerate(orders):
            cells.append((label, index, 0, order, order, order, 1))
    return _run_engine_sweep(
        variable="order",
        xs=list(orders),
        labels=labels,
        cells=cells,
        machines=[machine],
        entries=entry_table,
        workers=workers,
        cell_timeout=cell_timeout,
        retries=retries,
        backoff=backoff,
        chunksize=chunksize,
        fault_plan=fault_plan,
        serial_fallback=serial_fallback,
        manifest_path=manifest_path,
        pool_factory=pool_factory,
        run_dir=run_dir,
        resume=resume,
        drain_grace_s=drain_grace_s,
    )


def parallel_ratio_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    ratios: Sequence[float],
    order: int,
    *,
    workers: Optional[int] = None,
    total_bandwidth: float = 2.0,
    check: bool = False,
    inclusive: bool = False,
    policy: str = "lru",
    engine: str = "replay",
    strict_engine: bool = False,
    cell_timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.1,
    chunksize: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    serial_fallback: bool = True,
    manifest_path: Optional[Union[str, Path]] = None,
    pool_factory: Optional[Callable[..., Executor]] = None,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    drain_grace_s: float = 5.0,
) -> SweepResult:
    """Fault-tolerant parallel equivalent of :func:`repro.sim.sweep.ratio_sweep`.

    The per-ratio machines are derived once and shipped through the pool
    initializer; each submitted cell carries only the index of its
    machine.
    """
    reset_fallback_warnings()
    resolved = resolve_entries(entries)
    labels = [label for _a, _s, _p, label in resolved]
    machines = [
        machine.with_bandwidth_ratio(r, total=total_bandwidth) for r in ratios
    ]
    entry_table: Dict[str, Tuple[str, str, Dict[str, Any]]] = {}
    cells: List[CellSpec] = []
    for algorithm, setting, params, label in resolved:
        kwargs: Dict[str, Any] = dict(
            check=check,
            inclusive=inclusive,
            policy=policy,
            engine=engine,
            strict_engine=strict_engine,
            **params,
        )
        entry_table[label] = (algorithm, setting, kwargs)
        for index in range(len(ratios)):
            cells.append((label, index, index, order, order, order, 1))
    return _run_engine_sweep(
        variable="r",
        xs=list(ratios),
        labels=labels,
        cells=cells,
        machines=machines,
        entries=entry_table,
        workers=workers,
        cell_timeout=cell_timeout,
        retries=retries,
        backoff=backoff,
        chunksize=chunksize,
        fault_plan=fault_plan,
        serial_fallback=serial_fallback,
        manifest_path=manifest_path,
        pool_factory=pool_factory,
        run_dir=run_dir,
        resume=resume,
        drain_grace_s=drain_grace_s,
    )
