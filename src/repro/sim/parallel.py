"""Process-parallel sweep execution.

Simulating one experiment is inherently sequential (a cache's state is
a chain), but a *sweep* is embarrassingly parallel: every
(algorithm, setting, order) cell is independent.  This module fans the
cells of :func:`repro.sim.sweep.order_sweep` /
:func:`~repro.sim.sweep.ratio_sweep` out over a
:class:`~concurrent.futures.ProcessPoolExecutor` — results are
bit-identical to the serial versions (tests assert it), only wall-clock
changes.

Cells are submitted individually and reassembled in order, so the
speedup is ``min(workers, cells)`` minus pickling overhead; for the
full-scale figure sweeps (dozens of multi-second cells) that is near
linear.  Everything passed across the process boundary
(:class:`~repro.model.machine.MulticoreMachine`,
:class:`~repro.sim.results.ExperimentResult`) is plain-data and
picklable by construction.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.sim.results import SweepResult
from repro.sim.runner import run_experiment
from repro.sim.sweep import Entry, _unpack, series_label


def _run_cell(args: Tuple[Any, ...]) -> Tuple[str, int, Any]:
    """Worker entry: run one sweep cell, tagged for reassembly."""
    label, index, algorithm, setting, machine, m, n, z, kwargs = args
    result = run_experiment(algorithm, machine, m, n, z, setting, **kwargs)
    return label, index, result


def _default_workers() -> int:
    return max(os.cpu_count() or 1, 1)


def _resolve_workers(workers: Optional[int]) -> int:
    """Validate an explicit worker count, defaulting to the CPU count.

    Rejecting ``workers < 1`` here turns an opaque
    ``ProcessPoolExecutor`` ``ValueError`` traceback into the library's
    own :class:`~repro.exceptions.ConfigurationError`.
    """
    if workers is None:
        return _default_workers()
    if workers < 1:
        raise ConfigurationError(
            f"need at least one worker process, got workers={workers}"
        )
    return workers


def parallel_order_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    orders: Sequence[int],
    *,
    workers: Optional[int] = None,
    check: bool = False,
    inclusive: bool = False,
    policy: str = "lru",
) -> SweepResult:
    """Process-parallel equivalent of :func:`repro.sim.sweep.order_sweep`."""
    cells: List[Tuple[Any, ...]] = []
    labels: List[str] = []
    for entry in entries:
        algorithm, setting, params = _unpack(entry)
        label = series_label(algorithm, setting)
        labels.append(label)
        kwargs: Dict[str, Any] = dict(
            check=check, inclusive=inclusive, policy=policy, **params
        )
        for index, order in enumerate(orders):
            cells.append(
                (label, index, algorithm, setting, machine, order, order, order, kwargs)
            )
    sweep = SweepResult(variable="order", xs=list(orders))
    buckets: Dict[str, List[Any]] = {label: [None] * len(orders) for label in labels}
    with ProcessPoolExecutor(max_workers=_resolve_workers(workers)) as pool:
        for label, index, result in pool.map(_run_cell, cells):
            buckets[label][index] = result
    for label in labels:
        sweep.add(label, buckets[label])
    return sweep


def parallel_ratio_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    ratios: Sequence[float],
    order: int,
    *,
    workers: Optional[int] = None,
    total_bandwidth: float = 2.0,
    check: bool = False,
) -> SweepResult:
    """Process-parallel equivalent of :func:`repro.sim.sweep.ratio_sweep`."""
    cells: List[Tuple[Any, ...]] = []
    labels: List[str] = []
    for entry in entries:
        algorithm, setting, params = _unpack(entry)
        label = series_label(algorithm, setting)
        labels.append(label)
        kwargs: Dict[str, Any] = dict(check=check, **params)
        for index, r in enumerate(ratios):
            m = machine.with_bandwidth_ratio(r, total=total_bandwidth)
            cells.append(
                (label, index, algorithm, setting, m, order, order, order, kwargs)
            )
    sweep = SweepResult(variable="r", xs=list(ratios))
    buckets: Dict[str, List[Any]] = {label: [None] * len(ratios) for label in labels}
    with ProcessPoolExecutor(max_workers=_resolve_workers(workers)) as pool:
        for label, index, result in pool.map(_run_cell, cells):
            buckets[label][index] = result
    for label in labels:
        sweep.add(label, buckets[label])
    return sweep
