"""Execution-time estimation beyond raw ``Tdata``.

The paper's cost metric ``Tdata = MS/σS + MD/σD`` counts data movement
only and assumes the two levels serialize.  This module layers a small
analytical timing model on top of an
:class:`~repro.sim.results.ExperimentResult` to answer the questions a
performance engineer asks next:

* What if computation overlaps communication?  The classical bound is
  ``T ≥ max(compute, transfer)`` with full overlap and their sum with
  none; both estimates are provided, per core.
* When is the kernel *compute-bound* vs *bandwidth-bound*?  The model
  exposes the machine balance and each run's arithmetic intensity, i.e.
  a roofline-style classification — with the twist that there are two
  bandwidths (shared and distributed), hence two rooflines.

Model
-----
Each core performs ``comp_c`` block multiply-adds of ``tau`` time units
each and waits for ``MD_c / σD`` units of distributed fills (private
channels, concurrent across cores, as in the paper).  The shared cache
is a single resource: all ``MS`` fills serialize at ``1/σS`` each.

* no overlap:   ``T = MS/σS + max_c (MD_c/σD + comp_c·tau)``
* full overlap: ``T = max(MS/σS, max_c MD_c/σD, max_c comp_c·tau)``

Reality lies between the two; both are exact bounds for their
assumptions, and ``Tdata`` is recovered by ``tau = 0`` without overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.exceptions import ConfigurationError
from repro.sim.results import ExperimentResult


@dataclass(frozen=True)
class TimingEstimate:
    """Makespan estimates for one experiment under the timing model."""

    shared_time: float
    distributed_time: float  # max over cores
    compute_time: float  # max over cores
    serial: float
    overlapped: float

    @property
    def overlap_speedup(self) -> float:
        """Upper bound on what compute/transfer overlap can buy."""
        return self.serial / self.overlapped if self.overlapped else 1.0

    @property
    def bound_resource(self) -> str:
        """Which resource dominates under full overlap."""
        winner = max(
            ("shared", self.shared_time),
            ("distributed", self.distributed_time),
            ("compute", self.compute_time),
            key=lambda pair: pair[1],
        )
        return winner[0]


@dataclass(frozen=True)
class TimingModel:
    """Analytical timing model parameterized by the compute rate.

    ``tau`` is the time of one block multiply-add (2q³ flops) in the
    same time units the bandwidths use.  ``tau = 0`` reduces the model
    to pure data movement.
    """

    tau: float = 0.0

    def __post_init__(self) -> None:
        if self.tau < 0:
            raise ConfigurationError(f"tau must be non-negative, got {self.tau}")

    def estimate(self, result: ExperimentResult) -> TimingEstimate:
        """Makespan estimates for a finished experiment."""
        machine = result.machine
        shared_time = result.ms / machine.sigma_s
        per_core_md: List[int] = result.stats.md_per_core
        distributed_time = (
            max(per_core_md) / machine.sigma_d if per_core_md else 0.0
        )
        compute_time = max(result.comp) * self.tau if result.comp else 0.0
        # no overlap: shared fills serialize before the concurrent part;
        # each core then interleaves its fills and computes.
        per_core_serial = [
            md / machine.sigma_d + comp * self.tau
            for md, comp in zip(per_core_md, result.comp)
        ]
        serial = shared_time + (max(per_core_serial) if per_core_serial else 0.0)
        overlapped = max(shared_time, distributed_time, compute_time)
        return TimingEstimate(
            shared_time=shared_time,
            distributed_time=distributed_time,
            compute_time=compute_time,
            serial=serial,
            overlapped=overlapped,
        )

    def tdata(self, result: ExperimentResult) -> float:
        """The paper's metric, for cross-checking (``tau`` ignored)."""
        return result.tdata

    # ------------------------------------------------------------------
    # Roofline-style analysis
    # ------------------------------------------------------------------
    def machine_balance_shared(self, result: ExperimentResult) -> float:
        """Multiply-adds the machine can do per shared-cache fill.

        With ``tau = 0`` the balance is infinite (any intensity is
        bandwidth-bound); tests use ``tau > 0``.
        """
        if self.tau == 0:
            return float("inf")
        return 1.0 / (result.machine.sigma_s * self.tau)

    @staticmethod
    def intensity_shared(result: ExperimentResult) -> float:
        """Block multiply-adds per shared-cache fill achieved by the run."""
        return result.comp_total / result.ms if result.ms else float("inf")

    def is_compute_bound(self, result: ExperimentResult) -> bool:
        """Whether, under full overlap, compute dominates both transfers."""
        est = self.estimate(result)
        return est.bound_resource == "compute"
