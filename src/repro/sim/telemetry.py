"""Sweep telemetry: per-cell records, worker utilization, run manifests.

The sweep engine (:mod:`repro.sim.parallel`) is infrastructure: when a
figure sweep of dozens of cells runs for minutes across a process pool,
"it returned a SweepResult" is not enough evidence of *what* actually
ran.  This module holds the observability layer:

* :class:`CellRecord` — one (series, x) cell's outcome: status, attempt
  count, cumulative in-worker wall time, the error that killed it (for
  failed cells) and the worker that produced the final outcome.
* :class:`WorkerStats` — per worker process: cells executed and busy
  seconds, from which the manifest derives pool utilization.
* :class:`RunManifest` — the JSON run manifest written alongside a
  sweep: engine configuration (timeout/retry/backoff/chunking), every
  cell record, worker statistics and ok/failed/skipped totals
  (mirroring the checker's schema-2 cell accounting).

Everything here is plain data; the engine owns the bookkeeping.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.store.atomic import atomic_write_text

#: Cell statuses in the manifest.  ``ok`` — produced a result; ``failed``
#: — every attempt errored or timed out; ``skipped`` — never (re)ran,
#: e.g. a suspected worker-killer that the in-process fallback refuses
#: to execute.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_SKIPPED = "skipped"

#: Manifest schema version; bump on incompatible layout changes.
#: Schema 2 adds resume/interruption accounting (``resumed_cells``,
#: ``quarantined_records``, ``interrupted``, per-cell ``resumed``).
#: Schema 3 adds the optional ``fabric`` block (lease/requeue/worker-
#: death accounting for coordinator/worker runs).
MANIFEST_SCHEMA = 3


@dataclass
class CellRecord:
    """Outcome of one sweep cell (one series label at one x value)."""

    label: str
    index: int
    x: Any
    status: str = STATUS_OK
    attempts: int = 0
    wall_s: float = 0.0
    error_type: Optional[str] = None
    error: Optional[str] = None
    worker: Optional[int] = None
    #: Whether the result was restored from a run-directory checkpoint
    #: instead of being executed by this engine run.
    resumed: bool = False
    #: Whether the cell's requested replay engine silently degraded to
    #: the step engine (see :func:`repro.sim.runner.note_engine_fallback`).
    engine_fallback: bool = False
    #: Replay-engine telemetry mirrored off the result: which kernel
    #: evaluated the cell (``"bulk-lru"``/``"bulk-fifo"``/``"ideal"``/
    #: ``"step"``) and where its compiled trace came from
    #: (``"compiled"``/``"memory"``/``"disk"``/``"streamed"``).  Empty
    #: when unknown
    #: (failed cells, manifests predating the fields).
    kernel: str = ""
    trace_source: str = ""

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "label": self.label,
            "index": self.index,
            "x": self.x,
            "status": self.status,
            "attempts": self.attempts,
            "wall_s": round(self.wall_s, 6),
        }
        if self.error_type is not None:
            d["error_type"] = self.error_type
        if self.error is not None:
            d["error"] = self.error
        if self.worker is not None:
            d["worker"] = self.worker
        if self.resumed:
            d["resumed"] = True
        if self.engine_fallback:
            d["engine_fallback"] = True
        if self.kernel:
            d["kernel"] = self.kernel
        if self.trace_source:
            d["trace_source"] = self.trace_source
        return d


@dataclass
class WorkerStats:
    """Aggregate statistics of one worker process (keyed by pid)."""

    pid: int
    cells: int = 0
    busy_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "cells": self.cells,
            "busy_s": round(self.busy_s, 6),
        }


@dataclass
class FabricStats:
    """Lease/requeue/worker-death accounting of one fabric run.

    The counters tell the complete custody story of every cell: each
    granted lease ends in exactly one of a result accepted
    (``results_accepted``), an expiry requeue (``expired_leases``) or —
    for a stalled worker whose cell was re-leased and completed by
    someone else first — a duplicate-superseded release.  Retries
    (``retried_failures``) count accepted *failure* results that were
    requeued within the retry budget, and ``duplicate_results`` counts
    late submissions for already-finalized cells (dedup made them
    harmless).  ``workers_lost`` is the number of distinct workers
    whose leases expired — crashed, stalled or partitioned.
    """

    leases_granted: int = 0
    results_accepted: int = 0
    expired_leases: int = 0
    retried_failures: int = 0
    duplicate_results: int = 0
    heartbeats: int = 0
    workers_seen: int = 0
    workers_lost: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "leases_granted": self.leases_granted,
            "results_accepted": self.results_accepted,
            "expired_leases": self.expired_leases,
            "retried_failures": self.retried_failures,
            "duplicate_results": self.duplicate_results,
            "heartbeats": self.heartbeats,
            "workers_seen": self.workers_seen,
            "workers_lost": self.workers_lost,
        }


@dataclass
class RunManifest:
    """What one sweep engine run actually did, ready for JSON export."""

    variable: str
    xs: List[Any]
    workers: int
    cell_timeout_s: Optional[float]
    retries: int
    backoff_s: float
    chunksize: int
    elapsed_s: float = 0.0
    pool_rebuilds: int = 0
    serial_fallback: bool = False
    #: Cells restored from a run-directory checkpoint (never dispatched).
    resumed_cells: int = 0
    #: Checkpoint records rejected on load (checksum mismatch / corrupt).
    quarantined_records: int = 0
    #: Signal name (``"SIGINT"``/``"SIGTERM"``) when the run was
    #: interrupted and drained instead of finishing.
    interrupted: Optional[str] = None
    cells: List[CellRecord] = field(default_factory=list)
    worker_stats: List[WorkerStats] = field(default_factory=list)
    #: Present only for coordinator/worker (fabric) runs.
    fabric: Optional[FabricStats] = None

    def counts(self) -> Dict[str, int]:
        """Cell totals by status: ``{"ok": …, "failed": …, "skipped": …}``."""
        out = {STATUS_OK: 0, STATUS_FAILED: 0, STATUS_SKIPPED: 0}
        for cell in self.cells:
            out[cell.status] = out.get(cell.status, 0) + 1
        return out

    @property
    def engine_fallbacks(self) -> int:
        """Cells whose requested replay engine degraded to step."""
        return sum(1 for cell in self.cells if cell.engine_fallback)

    def utilization(self) -> float:
        """Fraction of the pool's capacity spent running cells.

        ``sum(worker busy time) / (elapsed * workers)``; 0 when the run
        finished instantaneously or never dispatched.
        """
        denom = self.elapsed_s * max(self.workers, 1)
        if denom <= 0:
            return 0.0
        return min(1.0, sum(w.busy_s for w in self.worker_stats) / denom)

    def record_execution(self, pid: int, wall_s: float) -> None:
        """Credit one cell execution to worker ``pid``."""
        for stats in self.worker_stats:
            if stats.pid == pid:
                stats.cells += 1
                stats.busy_s += wall_s
                return
        self.worker_stats.append(WorkerStats(pid=pid, cells=1, busy_s=wall_s))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema": MANIFEST_SCHEMA,
            "variable": self.variable,
            "xs": list(self.xs),
            "engine": {
                "workers": self.workers,
                "cell_timeout_s": self.cell_timeout_s,
                "retries": self.retries,
                "backoff_s": self.backoff_s,
                "chunksize": self.chunksize,
                "pool_rebuilds": self.pool_rebuilds,
                "serial_fallback": self.serial_fallback,
            },
            "resumed_cells": self.resumed_cells,
            "quarantined_records": self.quarantined_records,
            "engine_fallbacks": self.engine_fallbacks,
            "interrupted": self.interrupted,
            "cells": [cell.to_dict() for cell in self.cells],
            "cell_counts": self.counts(),
            "workers": [w.to_dict() for w in sorted(self.worker_stats, key=lambda s: s.pid)],
            "utilization": round(self.utilization(), 6),
            "elapsed_s": round(self.elapsed_s, 6),
        }
        if self.fabric is not None:
            out["fabric"] = self.fabric.to_dict()
        return out

    def write(self, path: Union[str, Path]) -> Path:
        """Atomically write the manifest as indented JSON; returns the path."""
        return atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")
