"""One-call experiment execution.

:func:`run_experiment` wires a machine, an algorithm and a setting into
a hierarchy + context pair, runs the schedule and packages the outcome.
This is the function everything else (experiments, benches, CLI,
examples) goes through.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Any, Optional, Set, Tuple, Type, Union

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.registry import get_algorithm
from repro.analysis.formulas import FORMULAS, predict
from repro.cache import replay as replay_engine
from repro.cache.hierarchy import IdealHierarchy, LRUHierarchy
from repro.exceptions import ConfigurationError, ScheduleError
from repro.model.machine import MulticoreMachine
from repro.sim.contexts import IdealContext, LRUContext
from repro.sim.results import ExperimentResult
from repro.sim.settings import Setting, get_setting

#: Valid values of ``run_experiment``'s ``engine`` parameter.
ENGINES = ("replay", "step")

logger = logging.getLogger(__name__)

#: Fallback configurations already warned about (process-wide); sweeps
#: reset this so every sweep warns at most once per configuration.
_WARNED_FALLBACKS: Set[Tuple[str, str, bool, bool]] = set()


def reset_fallback_warnings() -> None:
    """Forget which replay→step fallbacks were already warned about.

    Sweep drivers call this at sweep start so "warn once" is scoped to
    the sweep, not the process lifetime.
    """
    _WARNED_FALLBACKS.clear()


def note_engine_fallback(
    setting_key: str, policy: str, inclusive: bool, check: bool
) -> None:
    """Record (and warn once per configuration about) a replay→step fallback.

    The fallback is bit-identical but slow; making it observable is the
    runtime half of the static ``engine/silent-fallback`` analysis
    (:mod:`repro.check.enginemodel`).
    """
    key = (setting_key, policy, inclusive, check)
    if key in _WARNED_FALLBACKS:
        return
    _WARNED_FALLBACKS.add(key)
    logger.warning(
        "replay engine does not cover setting=%r policy=%r inclusive=%r "
        "check=%r; falling back to the step engine (pass strict_engine=True "
        "to fail fast, or engine='step' to silence this warning)",
        setting_key,
        policy,
        inclusive,
        check,
    )


def run_experiment(
    algorithm: Union[str, Type[MatmulAlgorithm]],
    machine: MulticoreMachine,
    m: int,
    n: int,
    z: int,
    setting: Union[str, Setting] = "ideal",
    *,
    check: bool = False,
    policy: str = "lru",
    inclusive: bool = False,
    verify_comp: bool = True,
    engine: str = "replay",
    strict_engine: bool = False,
    **alg_params: Any,
) -> ExperimentResult:
    """Run one algorithm on one machine under one setting.

    Parameters
    ----------
    algorithm:
        Registered name or :class:`MatmulAlgorithm` subclass.
    machine:
        The physical machine (full cache sizes, real bandwidths).
    m, n, z:
        Matrix dimensions in blocks (``A: m×z``, ``B: z×n``).
    setting:
        Simulation setting key or object (``ideal``, ``lru``,
        ``lru-2x``, ``lru-50``).
    check:
        In IDEAL mode, enable capacity/inclusion/presence verification
        (slower; invaluable in tests).
    policy, inclusive:
        LRU-mode hierarchy options (replacement policy; shared-eviction
        back-invalidation).
    verify_comp:
        Assert that the schedule emitted exactly ``m·n·z`` elementary
        multiply-adds (cheap sanity net; disable only in throughput
        measurements).
    engine:
        ``"replay"`` (default) compiles the schedule's access trace
        once (memoized across settings and repeated runs, see
        :mod:`repro.cache.replay`) and replays it in bulk; counters are
        bit-identical to ``"step"``, which interprets the schedule
        reference-by-reference and remains the oracle.  Configurations
        the replay engine does not cover (``check=True``, inclusive
        hierarchies, associative/PLRU policies) use the step engine
        instead — warned once per configuration and recorded on the
        result (``engine_fallback``).  Past the streaming threshold
        (``REPRO_STREAM_FMAS``) LRU/FIFO replays stream off the running
        schedule instead of materializing the trace
        (``trace_source="streamed"``), and IDEAL — whose vectorized
        replay needs the whole timeline — falls back to the
        memory-bounded step engine.
    strict_engine:
        Raise :class:`~repro.exceptions.ConfigurationError` instead of
        falling back when ``engine="replay"`` cannot reproduce the
        configuration.
    alg_params:
        Forwarded to the algorithm constructor (parameter overrides).
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; valid engines: {list(ENGINES)}"
        )
    if isinstance(algorithm, str):
        algorithm = get_algorithm(algorithm)
    if isinstance(setting, str):
        setting = get_setting(setting)

    declared = setting.declared(machine)
    alg = algorithm(declared, m, n, z, **alg_params)

    if setting.is_ideal and not algorithm.supports_ideal:
        raise ConfigurationError(
            f"{alg.name} is a compute-only schedule without explicit "
            "IDEAL directives; run it under an LRU-family setting (or "
            "through MultiLevelContext)"
        )

    replay_ok = replay_engine.supports(setting.mode, policy, inclusive, check)
    # IDEAL replay is vectorized over the whole timeline and must
    # materialize the trace; past the streaming threshold that is tens
    # of gigabytes, so the (memory-bounded) step engine takes over.
    stream = replay_engine.should_stream(m * n * z)
    ideal_too_big = setting.is_ideal and stream
    if engine == "replay" and replay_ok and ideal_too_big:
        replay_ok = False
        logger.warning(
            "IDEAL replay of %s at m=%d n=%d z=%d would materialize a "
            "%d-FMA trace (streaming threshold %d); using the "
            "memory-bounded step engine",
            alg.name,
            m,
            n,
            z,
            m * n * z,
            replay_engine.stream_threshold(),
        )
    fallback = engine == "replay" and not replay_ok
    if fallback and not ideal_too_big:
        if strict_engine:
            raise ConfigurationError(
                f"engine='replay' cannot reproduce setting={setting.key!r} "
                f"policy={policy!r} inclusive={inclusive!r} check={check!r} "
                "and strict_engine=True forbids the step fallback; use "
                "engine='step' explicitly"
            )
        note_engine_fallback(setting.key, policy, inclusive, check)

    if engine == "replay" and replay_ok:
        simulated = setting.simulated(machine)
        start = time.perf_counter()
        if stream and not setting.is_ideal:
            stats_list, comp = replay_engine.replay_bulk_streaming(
                alg, [(policy, simulated.cs, simulated.cd)]
            )
            stats = stats_list[0]
            kernel = f"bulk-{policy}"
            trace_source = "streamed"
            comp_total = sum(comp)
        else:
            trace = replay_engine.compiled_trace_for(
                alg, directives=setting.is_ideal
            )
            if setting.is_ideal:
                stats = replay_engine.replay_ideal(trace)
                kernel = "ideal"
            else:
                stats = replay_engine.replay_bulk(
                    trace, [(policy, simulated.cs, simulated.cd)]
                )[0]
                kernel = f"bulk-{policy}"
            trace_source = trace.origin
            comp = list(trace.comp)
            comp_total = trace.comp_total
        elapsed = time.perf_counter() - start
        if verify_comp and comp_total != m * n * z:
            raise ScheduleError(
                f"{alg.name} emitted {comp_total} multiply-adds, "
                f"expected m*n*z = {m * n * z}"
            )
        predicted = predict(alg) if alg.name in FORMULAS else None
        return ExperimentResult(
            algorithm=alg.name,
            setting=setting.key,
            machine=machine,
            m=m,
            n=n,
            z=z,
            parameters=alg.parameters(),
            stats=stats,
            comp=comp,
            predicted=predicted,
            elapsed_s=elapsed,
            worker=os.getpid(),
            engine="replay",
            kernel=kernel,
            trace_source=trace_source,
        )

    if setting.is_ideal:
        simulated = setting.simulated(machine)
        hierarchy: Union[IdealHierarchy, LRUHierarchy] = IdealHierarchy(
            machine.p, simulated.cs, simulated.cd, check=check
        )
        ctx: Union[IdealContext, LRUContext] = IdealContext(hierarchy)
    else:
        simulated = setting.simulated(machine)
        hierarchy = LRUHierarchy(
            machine.p, simulated.cs, simulated.cd, policy=policy, inclusive=inclusive
        )
        ctx = LRUContext(hierarchy)

    start = time.perf_counter()
    alg.run(ctx)
    elapsed = time.perf_counter() - start

    if verify_comp and ctx.comp_total != m * n * z:
        raise ScheduleError(
            f"{alg.name} emitted {ctx.comp_total} multiply-adds, "
            f"expected m*n*z = {m * n * z}"
        )

    predicted = predict(alg) if alg.name in FORMULAS else None
    return ExperimentResult(
        algorithm=alg.name,
        setting=setting.key,
        machine=machine,
        m=m,
        n=n,
        z=z,
        parameters=alg.parameters(),
        stats=hierarchy.snapshot(),
        comp=list(ctx.comp),
        predicted=predicted,
        elapsed_s=elapsed,
        worker=os.getpid(),
        engine="step",
        engine_fallback=fallback,
        kernel="step",
    )
