"""Parameter sweeps: matrix order and bandwidth ratio.

The paper's evaluation plots everything against either the (square)
matrix order in blocks (Figs. 4–11) or the bandwidth ratio
``r = σS/(σS + σD)`` at fixed order (Fig. 12).  These helpers produce
:class:`~repro.sim.results.SweepResult` families for both axes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.model.machine import MulticoreMachine
from repro.sim.results import ExperimentResult, SweepResult
from repro.sim.runner import run_experiment

#: A sweep entry: algorithm name + setting key, optionally with
#: algorithm parameter overrides.
Entry = Union[Tuple[str, str], Tuple[str, str, Dict[str, Any]]]


def _unpack(entry: Entry) -> Tuple[str, str, Dict[str, Any]]:
    if len(entry) == 2:
        algorithm, setting = entry  # type: ignore[misc]
        return algorithm, setting, {}
    algorithm, setting, params = entry  # type: ignore[misc]
    return algorithm, setting, dict(params)


def series_label(algorithm: str, setting: str) -> str:
    """Canonical series label, e.g. ``"shared-opt lru-50"``."""
    return f"{algorithm} {setting}"


def order_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    orders: Sequence[int],
    *,
    check: bool = False,
    inclusive: bool = False,
    policy: str = "lru",
) -> SweepResult:
    """Run every (algorithm, setting) entry over square orders ``m=n=z``."""
    sweep = SweepResult(variable="order", xs=list(orders))
    for entry in entries:
        algorithm, setting, params = _unpack(entry)
        results: List[ExperimentResult] = [
            run_experiment(
                algorithm,
                machine,
                order,
                order,
                order,
                setting,
                check=check,
                inclusive=inclusive,
                policy=policy,
                **params,
            )
            for order in orders
        ]
        sweep.add(series_label(algorithm, setting), results)
    return sweep


def ratio_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    ratios: Sequence[float],
    order: int,
    *,
    total_bandwidth: float = 2.0,
    check: bool = False,
) -> SweepResult:
    """Run entries over bandwidth ratios ``r = σS/(σS+σD)`` at fixed order.

    Each ratio rescales the machine's bandwidths (keeping their sum at
    ``total_bandwidth``); algorithms that adapt to bandwidths (Tradeoff)
    re-plan at every point, exactly as in Fig. 12.
    """
    sweep = SweepResult(variable="r", xs=list(ratios))
    for entry in entries:
        algorithm, setting, params = _unpack(entry)
        results = []
        for r in ratios:
            m = machine.with_bandwidth_ratio(r, total=total_bandwidth)
            results.append(
                run_experiment(
                    algorithm,
                    m,
                    order,
                    order,
                    order,
                    setting,
                    check=check,
                    **params,
                )
            )
        sweep.add(series_label(algorithm, setting), results)
    return sweep
