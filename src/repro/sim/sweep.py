"""Parameter sweeps: matrix order and bandwidth ratio.

The paper's evaluation plots everything against either the (square)
matrix order in blocks (Figs. 4–11) or the bandwidth ratio
``r = σS/(σS + σD)`` at fixed order (Fig. 12).  These helpers produce
:class:`~repro.sim.results.SweepResult` families for both axes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cache import replay as replay_engine
from repro.exceptions import ConfigurationError
from repro.model.machine import MulticoreMachine
from repro.sim.results import ExperimentResult, SweepResult
from repro.sim.runner import reset_fallback_warnings, run_experiment

#: A sweep entry: algorithm name + setting key, optionally with
#: algorithm parameter overrides.
Entry = Union[Tuple[str, str], Tuple[str, str, Dict[str, Any]]]


def _unpack(entry: Entry) -> Tuple[str, str, Dict[str, Any]]:
    if len(entry) == 2:
        algorithm, setting = entry  # type: ignore[misc]
        return algorithm, setting, {}
    algorithm, setting, params = entry  # type: ignore[misc]
    return algorithm, setting, dict(params)


def series_label(
    algorithm: str,
    setting: str,
    params: Optional[Mapping[str, Any]] = None,
) -> str:
    """Canonical series label, e.g. ``"shared-opt lru-50"``.

    Parameter overrides are folded into the label
    (``"shared-opt lru-50 lam=8"``) so that two entries differing only
    in ``params`` produce *distinct* series instead of silently
    overwriting each other's results.
    """
    label = f"{algorithm} {setting}"
    if params:
        overrides = " ".join(f"{key}={params[key]}" for key in sorted(params))
        label = f"{label} {overrides}"
    return label


def resolve_entries(
    entries: Iterable[Entry],
) -> List[Tuple[str, str, Dict[str, Any], str]]:
    """Unpack entries and assign each its unique series label.

    Raises :class:`~repro.exceptions.ConfigurationError` when two
    entries collapse to the same label (same algorithm, setting *and*
    parameter overrides) — running a true duplicate would silently
    discard one entry's results.
    """
    resolved: List[Tuple[str, str, Dict[str, Any], str]] = []
    seen: Dict[str, int] = {}
    for position, entry in enumerate(entries):
        algorithm, setting, params = _unpack(entry)
        label = series_label(algorithm, setting, params)
        if label in seen:
            raise ConfigurationError(
                f"duplicate series label {label!r} (entries {seen[label] + 1} "
                f"and {position + 1}): identical (algorithm, setting, params) "
                "entries would overwrite each other's series"
            )
        seen[label] = position
        resolved.append((algorithm, setting, params, label))
    return resolved


#: One (entry, order) cell shipped to a pool worker: the trace-tier
#: root plus every ``run_experiment`` argument.
_CellTask = Tuple[
    Optional[str],
    str,
    MulticoreMachine,
    int,
    str,
    bool,
    bool,
    str,
    str,
    bool,
    Dict[str, Any],
]


def _pool_cell(task: _CellTask) -> ExperimentResult:
    """Evaluate one sweep cell in a pool worker process."""
    (
        tier,
        algorithm,
        machine,
        order,
        setting,
        check,
        inclusive,
        policy,
        engine,
        strict_engine,
        params,
    ) = task
    replay_engine.configure_trace_tier(tier)
    return run_experiment(
        algorithm,
        machine,
        order,
        order,
        order,
        setting,
        check=check,
        inclusive=inclusive,
        policy=policy,
        engine=engine,
        strict_engine=strict_engine,
        **params,
    )


def order_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    orders: Sequence[int],
    *,
    check: bool = False,
    inclusive: bool = False,
    policy: str = "lru",
    engine: str = "replay",
    strict_engine: bool = False,
    workers: int = 0,
) -> SweepResult:
    """Run every (algorithm, setting) entry over square orders ``m=n=z``.

    With ``engine="replay"`` (the default) entries that share a
    schedule — same algorithm, parameters and *declared* machine, e.g.
    the ``lru``/``lru-2x``/``ideal`` family — reuse one memoized
    compiled trace per order instead of re-running the schedule per
    setting (see :mod:`repro.cache.replay`).  A configuration replay
    cannot reproduce is warned about once per sweep and falls back to
    the step engine — or raises, with ``strict_engine=True``.

    With ``workers > 1`` the (entry, order) cells fan out over a
    process pool, largest order first so the paper-scale cells never
    queue behind trivia.  Results are identical to the serial sweep
    (every cell is an independent ``run_experiment`` call); the
    in-process trace memo is per worker, so cross-setting trace reuse
    happens only through the on-disk tier when one is configured.
    """
    reset_fallback_warnings()
    sweep = SweepResult(variable="order", xs=list(orders))
    resolved = resolve_entries(entries)
    if workers > 1:
        from concurrent.futures import Future, ProcessPoolExecutor

        tier = replay_engine.trace_tier_root()
        tasks: List[_CellTask] = [
            (
                tier,
                algorithm,
                machine,
                order,
                setting,
                check,
                inclusive,
                policy,
                engine,
                strict_engine,
                params,
            )
            for algorithm, setting, params, _ in resolved
            for order in orders
        ]
        futures: Dict[int, "Future[ExperimentResult]"] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index in sorted(range(len(tasks)), key=lambda i: -tasks[i][3]):
                futures[index] = pool.submit(_pool_cell, tasks[index])
            flat = [futures[i].result() for i in range(len(tasks))]
        for position, (_, _, _, label) in enumerate(resolved):
            start = position * len(orders)
            sweep.add(label, list(flat[start : start + len(orders)]))
        return sweep
    for algorithm, setting, params, label in resolved:
        results: List[Optional[ExperimentResult]] = [
            run_experiment(
                algorithm,
                machine,
                order,
                order,
                order,
                setting,
                check=check,
                inclusive=inclusive,
                policy=policy,
                engine=engine,
                strict_engine=strict_engine,
                **params,
            )
            for order in orders
        ]
        sweep.add(label, results)
    return sweep


def ratio_sweep(
    entries: Iterable[Entry],
    machine: MulticoreMachine,
    ratios: Sequence[float],
    order: int,
    *,
    total_bandwidth: float = 2.0,
    check: bool = False,
    inclusive: bool = False,
    policy: str = "lru",
    engine: str = "replay",
    strict_engine: bool = False,
) -> SweepResult:
    """Run entries over bandwidth ratios ``r = σS/(σS+σD)`` at fixed order.

    Each ratio rescales the machine's bandwidths (keeping their sum at
    ``total_bandwidth``); algorithms that adapt to bandwidths (Tradeoff)
    re-plan at every point, exactly as in Fig. 12.  ``policy``,
    ``inclusive`` and ``strict_engine`` forward to
    :func:`~repro.sim.runner.run_experiment` exactly as in
    :func:`order_sweep`, so ratio sweeps can exercise the FIFO and
    inclusive-hierarchy variants too.
    """
    reset_fallback_warnings()
    sweep = SweepResult(variable="r", xs=list(ratios))
    for algorithm, setting, params, label in resolve_entries(entries):
        results: List[Optional[ExperimentResult]] = []
        for r in ratios:
            m = machine.with_bandwidth_ratio(r, total=total_bandwidth)
            results.append(
                run_experiment(
                    algorithm,
                    m,
                    order,
                    order,
                    order,
                    setting,
                    check=check,
                    inclusive=inclusive,
                    policy=policy,
                    engine=engine,
                    strict_engine=strict_engine,
                    **params,
                )
            )
        sweep.add(label, results)
    return sweep
