"""Injectable faults for exercising the sweep engine and the fabric.

The resilience claims of :mod:`repro.sim.parallel` and
:mod:`repro.fabric` — a crashed worker, a hung cell or a transiently
flaky cell must not abort the sweep — are only worth anything if they
are *tested*.  This module provides the test double: a
:class:`FaultSpec` describes how one cell misbehaves, and a fault plan
(``{(label, index): FaultSpec}``) is shipped to the worker processes
through the pool initializer (or, for fabric workers, as a JSON file —
see :func:`load_fault_plan`).  Before running a planned cell the worker
calls :func:`fire`, which simulates the fault:

* ``"crash"`` — the worker process dies on the spot (``os._exit``),
  which surfaces in the parent as ``BrokenProcessPool``: the hardest
  failure mode a process pool can produce.
* ``"hang"`` — the worker sleeps far past any sane cell timeout,
  exercising the engine's deadline tracking and pool replacement.
* ``"flaky"`` — the first ``fail_attempts`` attempts raise
  :class:`FaultInjectionError`; later attempts run normally, so the
  cell succeeds if the engine retries enough.
* ``"error"`` — every attempt raises: a deterministic per-cell failure
  that must end as an explicit failure record, never an abort.
* ``"stall"`` — the cell *runs and eventually completes*, but only
  after sleeping ``stall_s``; a fabric worker additionally suppresses
  its heartbeats for the cell's duration.  This is the
  live-but-silent worker: the lease must expire and the cell be
  re-leased even though the original worker later submits a (by then
  duplicate) result.  In the pool engine the kind degrades to a plain
  slow cell.
* ``"die"`` — the worker process SIGKILLs itself mid-cell (not merely
  raising in the cell): the process vanishes without flushing
  anything, so nothing short of lease expiry / ``BrokenProcessPool``
  can notice.

Faults are keyed by attempt number (supplied by the engine), so the
plan is plain immutable data and survives pool rebuilds and worker
respawns — a flaky cell stays flaky even when every worker that ever
saw it is dead.  ``fail_attempts`` bounds ``stall``/``die`` too: those
kinds fire only while ``attempt <= fail_attempts``, so a re-leased
cell eventually runs clean and the sweep completes.

The fault-plan JSON schema (``docs/SWEEPS.md`` documents it) is a list
of objects, one per planned cell::

    [{"label": "shared-opt ideal", "index": 0, "kind": "die",
      "fail_attempts": 1, "hang_s": 3600.0, "stall_s": 5.0}, ...]

``fail_attempts``/``hang_s``/``stall_s`` are optional and default as
in :class:`FaultSpec`.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.exceptions import ConfigurationError, ReproError
from repro.store.atomic import atomic_write_text

#: Recognized fault kinds.
KINDS = ("crash", "hang", "flaky", "error", "stall", "die")


class FaultInjectionError(ReproError):
    """Raised by an injected ``flaky`` / ``error`` cell."""


@dataclass(frozen=True)
class FaultSpec:
    """How one sweep cell misbehaves.

    Parameters
    ----------
    kind:
        One of :data:`KINDS`.
    fail_attempts:
        For ``flaky``: how many leading attempts fail before the cell
        starts succeeding.  For ``stall``/``die``: how many leading
        attempts misbehave before the cell runs clean.  Ignored by
        ``crash``/``hang``/``error``.
    hang_s:
        For ``hang``: how long the worker sleeps.  Defaults to an hour —
        effectively forever next to any realistic cell timeout.
    stall_s:
        For ``stall``: how long the cell dawdles (heartbeats
        suppressed) before computing.  Must exceed the fabric's lease
        interval for the lease to expire.
    """

    kind: str
    fail_attempts: int = 2
    hang_s: float = 3600.0
    stall_s: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; valid: {KINDS}")


#: A sweep's fault plan: ``(series label, x index) -> FaultSpec``.
FaultPlan = Dict[Tuple[str, int], FaultSpec]


def fire(spec: FaultSpec, attempt: int) -> None:
    """Simulate ``spec`` for the given 1-based attempt (worker side).

    ``stall`` only sleeps here — heartbeat suppression is the fabric
    worker's job, decided *before* calling :func:`fire` (see
    :func:`stalls`).
    """
    if spec.kind == "crash":
        # Bypass every cleanup handler: this is a segfault stand-in.
        os._exit(13)
    elif spec.kind == "hang":
        time.sleep(spec.hang_s)
    elif spec.kind == "flaky":
        if attempt <= spec.fail_attempts:
            raise FaultInjectionError(
                f"injected flaky failure (attempt {attempt}/"
                f"{spec.fail_attempts} failing attempts)"
            )
    elif spec.kind == "error":
        raise FaultInjectionError(f"injected permanent failure (attempt {attempt})")
    elif spec.kind == "stall":
        if attempt <= spec.fail_attempts:
            time.sleep(spec.stall_s)
    elif spec.kind == "die":
        if attempt <= spec.fail_attempts:
            # SIGKILL, not os._exit: nothing in this process — atexit
            # handlers, finally blocks, socket shutdowns — gets to run,
            # exactly like the OOM killer or a pulled power cord.
            os.kill(os.getpid(), signal.SIGKILL)


def stalls(spec: FaultSpec, attempt: int) -> bool:
    """Whether ``spec`` suppresses heartbeats for this attempt."""
    return spec.kind == "stall" and attempt <= spec.fail_attempts


# ----------------------------------------------------------------------
# JSON (de)serialization — fabric workers receive the plan as a file.
# ----------------------------------------------------------------------
def fault_plan_to_list(plan: FaultPlan) -> List[Dict[str, Any]]:
    """Serialize a plan as the documented JSON list, sorted by cell."""
    out: List[Dict[str, Any]] = []
    for (label, index) in sorted(plan):
        spec = plan[(label, index)]
        out.append(
            {
                "label": label,
                "index": index,
                "kind": spec.kind,
                "fail_attempts": spec.fail_attempts,
                "hang_s": spec.hang_s,
                "stall_s": spec.stall_s,
            }
        )
    return out


def fault_plan_from_list(payload: Any) -> FaultPlan:
    """Parse the documented JSON list back into a plan.

    Raises :class:`~repro.exceptions.ConfigurationError` on a malformed
    document — a fault plan is test configuration, and a typo silently
    ignored would void the test.
    """
    if not isinstance(payload, list):
        raise ConfigurationError(
            f"fault plan must be a JSON list, got {type(payload).__name__}"
        )
    plan: FaultPlan = {}
    for position, item in enumerate(payload):
        if not isinstance(item, dict):
            raise ConfigurationError(
                f"fault plan entry {position} is not an object"
            )
        try:
            label = item["label"]
            index = item["index"]
            kind = item["kind"]
        except KeyError as exc:
            raise ConfigurationError(
                f"fault plan entry {position} is missing key {exc}"
            ) from None
        if not isinstance(label, str) or not isinstance(index, int):
            raise ConfigurationError(
                f"fault plan entry {position}: label must be a string and "
                "index an integer"
            )
        try:
            spec = FaultSpec(
                kind=str(kind),
                fail_attempts=int(item.get("fail_attempts", 2)),
                hang_s=float(item.get("hang_s", 3600.0)),
                stall_s=float(item.get("stall_s", 5.0)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"fault plan entry {position}: {exc}"
            ) from None
        if (label, index) in plan:
            raise ConfigurationError(
                f"fault plan entry {position} duplicates cell "
                f"({label!r}, {index})"
            )
        plan[(label, index)] = spec
    return plan


def dump_fault_plan(plan: FaultPlan, path: Union[str, Path]) -> Path:
    """Atomically write ``plan`` as JSON; returns the path."""
    text = json.dumps(fault_plan_to_list(plan), indent=2) + "\n"
    return atomic_write_text(path, text)


def load_fault_plan(path: Union[str, Path]) -> FaultPlan:
    """Read a JSON fault plan from disk.

    Raises :class:`~repro.exceptions.ConfigurationError` when the file
    is unreadable or malformed.
    """
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from None
    except ValueError as exc:
        raise ConfigurationError(
            f"fault plan {path} is not valid JSON: {exc}"
        ) from None
    return fault_plan_from_list(payload)
