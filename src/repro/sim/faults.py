"""Injectable faults for exercising the sweep engine.

The resilience claims of :mod:`repro.sim.parallel` — a crashed worker,
a hung cell or a transiently flaky cell must not abort the sweep — are
only worth anything if they are *tested*.  This module provides the
test double: a :class:`FaultSpec` describes how one cell misbehaves,
and a fault plan (``{(label, index): FaultSpec}``) is shipped to the
worker processes through the pool initializer.  Before running a
planned cell the worker calls :func:`fire`, which simulates the fault:

* ``"crash"`` — the worker process dies on the spot (``os._exit``),
  which surfaces in the parent as ``BrokenProcessPool``: the hardest
  failure mode a process pool can produce.
* ``"hang"`` — the worker sleeps far past any sane cell timeout,
  exercising the engine's deadline tracking and pool replacement.
* ``"flaky"`` — the first ``fail_attempts`` attempts raise
  :class:`FaultInjectionError`; later attempts run normally, so the
  cell succeeds if the engine retries enough.
* ``"error"`` — every attempt raises: a deterministic per-cell failure
  that must end as an explicit failure record, never an abort.

Faults are keyed by attempt number (supplied by the engine), so the
plan is plain immutable data and survives pool rebuilds — a flaky cell
stays flaky even when every worker that ever saw it is dead.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import ReproError

#: Recognized fault kinds.
KINDS = ("crash", "hang", "flaky", "error")


class FaultInjectionError(ReproError):
    """Raised by an injected ``flaky`` / ``error`` cell."""


@dataclass(frozen=True)
class FaultSpec:
    """How one sweep cell misbehaves.

    Parameters
    ----------
    kind:
        One of :data:`KINDS`.
    fail_attempts:
        For ``flaky``: how many leading attempts fail before the cell
        starts succeeding.  Ignored by the other kinds.
    hang_s:
        For ``hang``: how long the worker sleeps.  Defaults to an hour —
        effectively forever next to any realistic cell timeout.
    """

    kind: str
    fail_attempts: int = 2
    hang_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; valid: {KINDS}")


#: A sweep's fault plan: ``(series label, x index) -> FaultSpec``.
FaultPlan = Dict[Tuple[str, int], FaultSpec]


def fire(spec: FaultSpec, attempt: int) -> None:
    """Simulate ``spec`` for the given 1-based attempt (worker side)."""
    if spec.kind == "crash":
        # Bypass every cleanup handler: this is a segfault stand-in.
        os._exit(13)
    elif spec.kind == "hang":
        time.sleep(spec.hang_s)
    elif spec.kind == "flaky":
        if attempt <= spec.fail_attempts:
            raise FaultInjectionError(
                f"injected flaky failure (attempt {attempt}/"
                f"{spec.fail_attempts} failing attempts)"
            )
    elif spec.kind == "error":
        raise FaultInjectionError(f"injected permanent failure (attempt {attempt})")
