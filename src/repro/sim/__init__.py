"""Simulation engine: contexts, settings, runner and sweeps.

* :mod:`repro.sim.contexts` — interpreters plugging algorithms into the
  LRU / IDEAL hierarchies.
* :mod:`repro.sim.settings` — the paper's simulation settings (IDEAL,
  LRU, LRU-50, LRU-2x).
* :mod:`repro.sim.runner` — one-call experiment execution producing
  :class:`~repro.sim.results.ExperimentResult`.
* :mod:`repro.sim.sweep` — matrix-order and bandwidth-ratio sweeps.
* :mod:`repro.sim.parallel` — the fault-tolerant process-parallel sweep
  engine (timeouts, retries, crash recovery, run manifests).
* :mod:`repro.sim.telemetry` — per-cell records, worker statistics and
  the JSON run manifest.
* :mod:`repro.sim.faults` — injectable crash/hang/flaky/stall/die
  cells for exercising the engine and the fabric.
* :mod:`repro.sim.retrypolicy` — the shared retry classification and
  jittered exponential backoff used by the pool engine and the fabric.
"""

from repro.sim.contexts import (
    ChainContext,
    IdealContext,
    LRUContext,
    RecordingContext,
)
from repro.sim.settings import SETTINGS, Setting, get_setting
from repro.sim.results import ExperimentResult, SweepResult
from repro.sim.runner import run_experiment
from repro.sim.sweep import order_sweep, ratio_sweep, resolve_entries, series_label
from repro.sim.parallel import parallel_order_sweep, parallel_ratio_sweep
from repro.sim.faults import (
    FaultInjectionError,
    FaultPlan,
    FaultSpec,
    dump_fault_plan,
    load_fault_plan,
)
from repro.sim.retrypolicy import BackoffPolicy, is_retryable
from repro.sim.telemetry import CellRecord, FabricStats, RunManifest, WorkerStats
from repro.sim.timing import TimingEstimate, TimingModel

__all__ = [
    "ChainContext",
    "IdealContext",
    "LRUContext",
    "RecordingContext",
    "SETTINGS",
    "Setting",
    "get_setting",
    "ExperimentResult",
    "SweepResult",
    "run_experiment",
    "order_sweep",
    "ratio_sweep",
    "resolve_entries",
    "series_label",
    "parallel_order_sweep",
    "parallel_ratio_sweep",
    "FaultInjectionError",
    "FaultPlan",
    "FaultSpec",
    "dump_fault_plan",
    "load_fault_plan",
    "BackoffPolicy",
    "is_retryable",
    "CellRecord",
    "FabricStats",
    "RunManifest",
    "WorkerStats",
    "TimingEstimate",
    "TimingModel",
]
