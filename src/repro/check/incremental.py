"""Incremental checking: fingerprint cells, reuse unchanged reports.

A full ``check_all`` re-records and re-proves every algorithm × machine
cell even when nothing changed — fine at a few seconds, wasteful in CI
on every push.  :class:`ReportCache` makes the checker incremental: each
cell is keyed by a fingerprint of everything its verdict depends on —

* the **source** of the algorithm class (every file in its MRO that
  lives inside the :mod:`repro` package, so editing ``base.py``
  invalidates every schedule);
* the **machine** (full dataclass repr: capacities, bandwidths, core
  count);
* the **orders** the cell is analyzed at;
* the **checker** itself: :data:`~repro.check.findings.CHECKER_VERSION`
  plus a hash of the analyzer sources and of the formula/bound modules
  they prove against.

A hit replays the stored :class:`~repro.check.runner.ScheduleReport`
list verbatim (findings included, flagged ``cached``); a miss analyzes
and stores.  Entries are one JSON file per cell under
``.repro-check-cache/`` — safe to delete at any time, content-addressed
so stale entries are simply never read again.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.algorithms.base import MatmulAlgorithm
from repro.check.findings import CHECKER_VERSION
from repro.check.runner import ScheduleReport
from repro.model.machine import MulticoreMachine
from repro.store.atomic import atomic_write_text

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-check-cache"

#: On-disk entry schema; bump on incompatible layout changes.
CACHE_SCHEMA = 1

#: Modules outside :mod:`repro.check` whose behaviour the cost analyzer
#: proves against; their sources join the checker fingerprint.
_ORACLE_MODULES = ("analysis/formulas.py", "model/bounds.py", "analysis/report.py")


def _file_digest(path: Path) -> str:
    try:
        return hashlib.sha256(path.read_bytes()).hexdigest()
    except OSError:
        return "missing"


def checker_fingerprint() -> str:
    """Hash of the checker version, its sources and its oracle modules."""
    package_root = Path(__file__).resolve().parent
    repro_root = package_root.parent
    digest = hashlib.sha256()
    digest.update(f"checker-version:{CHECKER_VERSION}".encode())
    for path in sorted(package_root.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(_file_digest(path).encode())
    for rel in _ORACLE_MODULES:
        digest.update(rel.encode())
        digest.update(_file_digest(repro_root / rel).encode())
    return digest.hexdigest()


def _algorithm_sources(cls: Type[MatmulAlgorithm]) -> List[Path]:
    """Source files of every class in ``cls``'s MRO inside ``repro``."""
    paths: List[Path] = []
    seen = set()
    for klass in cls.__mro__:
        try:
            source = inspect.getsourcefile(klass)
        except TypeError:
            source = None
        if source is None or "repro" not in source:
            continue
        path = Path(source).resolve()
        if path not in seen:
            seen.add(path)
            paths.append(path)
    return paths


class ReportCache:
    """Content-addressed cell-report store for incremental checking."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else Path(DEFAULT_CACHE_DIR)
        self.checker_fp = checker_fingerprint()
        self.hits = 0
        self.misses = 0
        self._source_digests: Dict[Path, str] = {}

    def _source_digest(self, path: Path) -> str:
        digest = self._source_digests.get(path)
        if digest is None:
            digest = _file_digest(path)
            self._source_digests[path] = digest
        return digest

    def cell_key(
        self,
        cls: Type[MatmulAlgorithm],
        machine: MulticoreMachine,
        machine_label: str,
        orders: Sequence[int],
    ) -> str:
        """Fingerprint of one algorithm × machine × orders cell."""
        digest = hashlib.sha256()
        digest.update(self.checker_fp.encode())
        digest.update(cls.name.encode())
        for path in _algorithm_sources(cls):
            digest.update(self._source_digest(path).encode())
        digest.update(machine_label.encode())
        digest.update(repr(machine).encode())
        digest.update(",".join(str(o) for o in orders).encode())
        return digest.hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[List[ScheduleReport]]:
        """Replay a cell's stored reports, or ``None`` on a cache miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != CACHE_SCHEMA or payload.get("cell") != key:
            self.misses += 1
            return None
        try:
            reports = [ScheduleReport.from_dict(r) for r in payload["reports"]]
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        for report in reports:
            report.cached = True
        self.hits += 1
        return reports

    def store(self, key: str, reports: List[ScheduleReport]) -> None:
        """Persist a cell's reports under its fingerprint.

        Written atomically: a cache entry torn by a crash would
        otherwise replay as a silent miss-parse forever (the key — a
        content hash — never changes, so the bad file is never
        overwritten by normal operation).
        """
        payload = {
            "schema": CACHE_SCHEMA,
            "cell": key,
            "reports": [r.to_dict() for r in reports],
        }
        atomic_write_text(self._path(key), json.dumps(payload, indent=1))

    def stats(self) -> Tuple[int, int]:
        """(cells replayed from cache, cells analyzed fresh)."""
        return self.hits, self.misses
