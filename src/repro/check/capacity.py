"""Capacity checking: working sets and the paper's §3 parameter constraints.

Two independent proofs:

* :func:`check_capacity` walks the recorded event log and tracks the
  exact resident set of the shared cache and of every distributed
  cache.  The ideal cache model makes replacement the *algorithm's*
  job, so a working set exceeding ``CS`` (or ``CD``) at any point is a
  schedule bug, not a miss — the same condition
  :class:`~repro.cache.hierarchy.IdealHierarchy` raises on dynamically,
  proved here without simulating.

* :func:`check_parameters` re-derives the cache-fitting constraints of
  the paper's §3 from the algorithm's chosen parameters:
  ``1 + λ + λ² ≤ CS`` (Algorithm 1), ``1 + µ + µ² ≤ CD`` (Algorithm 2),
  ``α² + 2αβ ≤ CS`` with ``√p·µ | α`` (Algorithm 3), and ``3t² ≤ C``
  for the equal-thirds baselines.  Constructors enforce these today;
  the checker proves they *stay* enforced when parameters are
  overridden or constructors refactored.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.algorithms.base import MatmulAlgorithm
from repro.cache.block import key_name
from repro.check.events import COMPUTE, EVICT_D, EVICT_S, LOAD_D, LOAD_S, Event
from repro.check.findings import ERROR, Finding, FindingLimiter


def capacity_and_peaks(
    events: Sequence[Event],
    cs: int,
    cd: int,
    p: int,
    *,
    algorithm: str = "",
    machine: str = "",
    limit: int = 25,
) -> Tuple[List[Finding], int, List[int]]:
    """One pass serving both the capacity proof and the peak counts.

    Both walk the log maintaining the same exact resident sets; the
    runner visits every event of every cell, so they share the walk.
    Returns ``(findings, peak_shared, peak_dist)``.
    """
    out = FindingLimiter("capacity", limit)
    shared: Set[int] = set()
    dist: List[Set[int]] = [set() for _ in range(p)]
    peak_shared = 0
    peak_dist = [0] * p
    for index, ev in enumerate(events):
        op = ev[0]
        if op == LOAD_S:
            key = ev[2]
            if key not in shared and len(shared) >= cs:
                out.add(
                    Finding(
                        "capacity",
                        ERROR,
                        f"shared cache overflow loading {key_name(key)}: "
                        f"{len(shared)}/{cs} blocks resident",
                        algorithm=algorithm,
                        machine=machine,
                        event=index,
                        rule="capacity/ws-overflow",
                    )
                )
            shared.add(key)
            if len(shared) > peak_shared:
                peak_shared = len(shared)
        elif op == EVICT_S:
            shared.discard(ev[2])
        elif op == LOAD_D:
            core, key = ev[1], ev[2]
            dset = dist[core]
            if key not in dset and len(dset) >= cd:
                out.add(
                    Finding(
                        "capacity",
                        ERROR,
                        f"distributed cache of core {core} overflow loading "
                        f"{key_name(key)}: {len(dset)}/{cd} blocks resident",
                        algorithm=algorithm,
                        machine=machine,
                        event=index,
                        rule="capacity/ws-overflow",
                    )
                )
            dset.add(key)
            if len(dset) > peak_dist[core]:
                peak_dist[core] = len(dset)
        elif op == EVICT_D:
            dist[ev[1]].discard(ev[2])
        elif op == COMPUTE:
            pass
    return out.results(), peak_shared, peak_dist


def working_set_peaks(events: Sequence[Event], p: int) -> Tuple[int, List[int]]:
    """Peak resident block counts (shared, per-core) over the whole log."""
    _, peak_shared, peak_dist = capacity_and_peaks(
        events, len(events) + 1, len(events) + 1, p
    )
    return peak_shared, peak_dist


def check_capacity(
    events: Sequence[Event],
    cs: int,
    cd: int,
    p: int,
    *,
    algorithm: str = "",
    machine: str = "",
    limit: int = 25,
) -> List[Finding]:
    """Prove the explicit working set never exceeds ``CS`` / ``CD``.

    Every load that would push a resident set past its capacity yields
    one error finding (evictions always succeed, mirroring the ideal
    hierarchy).  Redundant loads (block already resident) do not grow
    the set and are reported by the presence checker, not here.
    """
    findings, _, _ = capacity_and_peaks(
        events,
        cs,
        cd,
        p,
        algorithm=algorithm,
        machine=machine,
        limit=limit,
    )
    return findings


def check_parameters(alg: MatmulAlgorithm, *, machine: str = "") -> List[Finding]:
    """Prove the algorithm's tile parameters satisfy the §3 constraints."""
    findings: List[Finding] = []
    cs, cd, p = alg.machine.cs, alg.machine.cd, alg.machine.p

    def fail(message: str) -> None:
        findings.append(
            Finding(
                "capacity",
                ERROR,
                message,
                algorithm=alg.name,
                machine=machine,
                rule="capacity/param-constraint",
            )
        )

    params: Dict[str, object] = alg.parameters()
    lam = params.get("lambda")
    if isinstance(lam, int) and 1 + lam + lam * lam > cs:
        fail(f"lambda={lam} violates 1 + λ + λ² <= CS={cs}")
    mu = params.get("mu")
    if isinstance(mu, int) and 1 + mu + mu * mu > cd:
        fail(f"mu={mu} violates 1 + µ + µ² <= CD={cd}")
    alpha, beta = params.get("alpha"), params.get("beta")
    if isinstance(alpha, int) and isinstance(beta, int):
        if alpha * alpha + 2 * alpha * beta > cs:
            fail(f"(alpha={alpha}, beta={beta}) violates α² + 2αβ <= CS={cs}")
        if isinstance(mu, int):
            side = int(p**0.5)
            if side * side == p and alpha % (side * mu) != 0:
                fail(f"alpha={alpha} is not a multiple of √p·µ={side * mu}")
    t = params.get("t")
    if isinstance(t, int):
        # Equal-thirds: the constraint binds the cache the variant targets.
        target_cap = cs if alg.name == "shared-equal" else cd
        if 3 * t * t > target_cap:
            fail(f"t={t} violates 3t² <= {'CS' if target_cap == cs else 'CD'}={target_cap}")
    return findings
