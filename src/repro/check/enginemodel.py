"""Engine-conformance analysis: where replay silently becomes step.

:func:`repro.sim.runner.run_experiment` prefers the bulk replay engine
and quietly interprets the schedule with the step oracle whenever the
requested configuration is outside :func:`repro.cache.replay.supports`
(checked IDEAL runs, inclusive hierarchies, associative/PLRU
policies).  That fallback is bit-identical but *not free* — it is the
slow path — and a user who asked for ``engine="replay"`` deserves to
know statically which cells will not get it.

Two passes, both pure static analysis:

* :func:`fallback_matrix` walks the canonical configuration space
  (every registered setting × representative replacement policies ×
  inclusive × check) through the ``supports`` predicate and emits one
  ``engine/silent-fallback`` warning per distinct unsupported
  configuration class (classes the predicate actually distinguishes —
  duplicate settings of the same mode collapse).

* :func:`scan_call_sites` parses the package, ``benchmarks/`` and
  ``examples/`` sources and flags every ``run_experiment``/sweep call
  whose *literal* arguments pin an unsupported configuration without
  opting out (``engine="step"``) or opting into strictness
  (``strict_engine=True``).  Dynamic arguments are out of scope — the
  pass proves what it flags.

Findings are warnings: the fallback is correct, just implicit.  The
companion lint rule ``lint/fallback-telemetry``
(:mod:`repro.check.lint`) keeps future fallback sites honest by
requiring them to record telemetry.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cache.replay import REPLAY_POLICIES, supports
from repro.check.findings import WARNING, Finding
from repro.sim.settings import SETTINGS

#: Replacement policies the configuration walk probes: the replay-native
#: pair plus the associativity/PLRU ablations the step engine owns.
CANONICAL_POLICIES: Tuple[str, ...] = (
    "lru",
    "fifo",
    "plru",
    "assoc8",
    "assoc8-plru",
)

#: Call targets the source scan understands.
_RUNNER_CALLS = frozenset(
    {
        "run_experiment",
        "order_sweep",
        "ratio_sweep",
        "parallel_order_sweep",
        "parallel_ratio_sweep",
    }
)

#: ``run_experiment``'s positional ``setting`` slot (0-based).
_SETTING_ARG_POSITION = 5


def _finding(message: str, *, location: str = "") -> Finding:
    return Finding(
        "engine",
        WARNING,
        message,
        location=location,
        rule="engine/silent-fallback",
    )


def fallback_matrix() -> List[Finding]:
    """One warning per unsupported configuration class.

    The ``supports`` predicate consults ``(mode, check)`` in IDEAL mode
    and ``(policy, inclusive)`` in LRU mode; configurations it cannot
    distinguish share one finding, with every affected setting named.
    """
    classes: Dict[Tuple[str, ...], Tuple[List[str], str]] = {}
    for key in sorted(SETTINGS):
        setting = SETTINGS[key]
        for policy in CANONICAL_POLICIES:
            for inclusive in (False, True):
                for check in (False, True):
                    if supports(setting.mode, policy, inclusive, check):
                        continue
                    if setting.mode == "ideal":
                        sig: Tuple[str, ...] = ("ideal", str(check))
                        detail = "check=True"
                    else:
                        sig = ("lru", policy, str(inclusive))
                        parts = [f"policy={policy!r}"]
                        if inclusive:
                            parts.append("inclusive=True")
                        detail = ", ".join(parts)
                    names, _ = classes.setdefault(sig, ([], detail))
                    if key not in names:
                        names.append(key)
    findings: List[Finding] = []
    for sig in sorted(classes):
        names, detail = classes[sig]
        findings.append(
            _finding(
                f"setting {'/'.join(names)} with {detail} silently falls "
                "back from the replay engine to the step engine; pass "
                "strict_engine=True to fail fast or engine='step' to make "
                "the choice explicit",
                location="src/repro/sim/runner.py",
            )
        )
    return findings


def _literal(node: Optional[ast.expr]) -> Tuple[object, bool]:
    """``(value, known)`` for a literal expression; ``known=False`` when
    the value is dynamic and the scan must not guess."""
    if node is None:
        return None, False
    if isinstance(node, ast.Constant):
        return node.value, True
    return None, False


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _classify_call(call: ast.Call) -> Optional[str]:
    """Why this call silently falls back, or ``None`` if it provably
    does not (or the scan cannot prove it does)."""
    name = _call_name(call)
    if name not in _RUNNER_CALLS:
        return None
    kw: Dict[str, ast.expr] = {
        k.arg: k.value for k in call.keywords if k.arg is not None
    }
    engine, engine_known = _literal(kw.get("engine"))
    if "engine" in kw and (not engine_known or engine != "replay"):
        return None  # explicit step engine, or dynamic — nothing silent
    strict, strict_known = _literal(kw.get("strict_engine"))
    if "strict_engine" in kw and (not strict_known or bool(strict)):
        return None  # strict mode raises instead of falling back

    policy, policy_known = _literal(kw.get("policy"))
    if "policy" not in kw:
        policy, policy_known = "lru", True
    inclusive, inclusive_known = _literal(kw.get("inclusive"))
    if "inclusive" not in kw:
        inclusive, inclusive_known = False, True
    check, check_known = _literal(kw.get("check"))
    if "check" not in kw:
        check, check_known = False, True

    if name == "run_experiment":
        setting_node: Optional[ast.expr] = kw.get("setting")
        if setting_node is None and len(call.args) > _SETTING_ARG_POSITION:
            setting_node = call.args[_SETTING_ARG_POSITION]
        if setting_node is None:
            setting_value: object = "ideal"  # run_experiment's default
            setting_known = True
        else:
            setting_value, setting_known = _literal(setting_node)
        if not setting_known or setting_value not in SETTINGS:
            mode: Optional[str] = None
        else:
            mode = SETTINGS[str(setting_value)].mode
        if mode is not None:
            needed_known = (
                check_known
                if mode == "ideal"
                else (policy_known and inclusive_known)
            )
            if needed_known and not supports(
                mode, str(policy), bool(inclusive), bool(check)
            ):
                return (
                    f"run_experiment(setting={setting_value!r}, "
                    f"policy={policy!r}, inclusive={inclusive!r}, "
                    f"check={check!r})"
                )
            if needed_known:
                return None
        # Mode unknown: fall through to the one-sided decisions below.

    # Sweeps carry their settings inside the entries; a pinned
    # unsupported policy or inclusive=True falls back for every
    # LRU-mode entry, and check=True for every IDEAL-mode entry.
    if inclusive_known and bool(inclusive):
        return f"{name}(..., inclusive=True)"
    if policy_known and str(policy) not in REPLAY_POLICIES:
        return f"{name}(..., policy={policy!r})"
    if name != "run_experiment" and check_known and bool(check):
        return f"{name}(..., check=True) (IDEAL-mode entries)"
    return None


def scan_call_sites(
    root: Optional[Path] = None,
    *,
    paths: Optional[Iterable[Path]] = None,
) -> List[Finding]:
    """Flag experiment/sweep call sites that will silently fall back.

    ``root`` defaults to the installed package directory; in a source
    checkout the sibling ``benchmarks/`` and ``examples/`` trees are
    scanned too — that is where the ablation studies pin the
    associative/PLRU and inclusive configurations.
    """
    base: Optional[Path] = None
    if paths is None:
        if root is None:
            root = Path(__file__).resolve().parent.parent
        scan = sorted(root.rglob("*.py"))
        if root.parent.name == "src":
            base = root.parent.parent  # repo root, for portable locations
            for sibling in ("benchmarks", "examples"):
                extra = base / sibling
                if extra.is_dir():
                    scan += sorted(extra.rglob("*.py"))
        paths = scan
    findings: List[Finding] = []
    for path in paths:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError:
            continue  # lint/syntax owns unparseable sources
        shown = path
        if base is not None:
            try:
                shown = path.relative_to(base)
            except ValueError:
                pass
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            reason = _classify_call(node)
            if reason is not None:
                findings.append(
                    _finding(
                        f"{reason} silently falls back from the replay "
                        "engine to the step engine; pass strict_engine=True "
                        "to fail fast or engine='step' to make the choice "
                        "explicit",
                        location=f"{shown}:{node.lineno}",
                    )
                )
    return findings


def check_engine_model(
    root: Optional[Path] = None,
    *,
    paths: Optional[Sequence[Path]] = None,
) -> List[Finding]:
    """The full engine-conformance pass: matrix walk + call-site scan."""
    return fallback_matrix() + scan_call_sites(root, paths=paths)
