"""A lightweight intraprocedural AST dataflow engine.

This is the machinery under the ``purity/*`` and ``determinism/*``
analyzers: reaching definitions plus taint propagation through
assignments, calls, comprehensions and f-strings — just enough dataflow
to *prove* the fingerprint-purity and determinism invariants the store
and sweep layers promise in prose, and honest about its limits.

Model
-----
* Analysis is per-scope (module, function, method).  Calls are not
  followed; instead, taint *enters* a scope through declared sources —
  parameter names, attribute names (``self.workers``), and constant
  string subscripts (``cfg["engine"]``) — so a knob threaded through
  any number of calls is re-detected wherever its conventional name
  reappears.  This keeps the engine honestly intraprocedural while
  still catching realistic regressions.
* Each value carries a **taint**: ``{label: line}`` mapping source
  labels to the line where they entered the scope, and a set of
  **kinds** (e.g. ``unordered`` for set-valued data, a writer kind for
  checkpoint writers) used by the ordering rules.
* Propagation is flow-sensitive in statement order within a pass; loops
  are handled by iterating passes to a fixpoint (environments only
  grow along the lattice, so this converges quickly — a small round cap
  guards pathological inputs).  After the fixpoint, one **report pass**
  re-walks the scope and invokes the analyzer hooks, so findings are
  emitted exactly once.
* Sanitizers: ``sorted()``/``min``/``max``/… strip the ``unordered``
  kind; a dict comprehension whose ``if`` clause filters keys out of a
  constant blocklist strips those labels (the ``fp_kwargs = {k: v ...
  if k not in ("engine", "strict_engine")}`` idiom); per-call label
  sanitizers come from the :class:`TaintSpec`.
* Out of scope, by design: interprocedural flow through return values,
  aliasing through containers beyond direct element binding, exception
  edges, and attribute flow on non-``self`` objects.  The analyzers
  built on top choose sources/sinks so these gaps bias toward missed
  findings, never toward noise.

Classes get a pre-pass: every ``self.<attr> = value`` assignment in any
method contributes to a class-level attribute environment, so a set
built in ``__init__`` is recognised as unordered when iterated from a
different method.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

#: Taint: source label -> line where it entered this scope.
Taint = Dict[str, int]
#: Value kinds.
Kinds = Set[str]

KIND_UNORDERED = "unordered"
KIND_WRITER = "checkpoint-writer"

#: Calls producing inherently unordered containers.
_UNORDERED_PRODUCERS = frozenset({"set", "frozenset"})
#: Calls preserving their argument's (lack of) ordering.
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})
#: Order-insensitive consumers: strip the unordered kind.
_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "sum", "len", "any", "all"})

_FIXPOINT_ROUNDS = 5


@dataclass(frozen=True)
class TaintSpec:
    """Where taint enters a scope and what scrubs it.

    Each source mapping is ``name -> label``: parameters by name,
    attributes by attribute name (matched on any receiver — knob names
    are a project-wide convention), constant string subscript keys.
    ``call_sanitizers`` maps a callable name to labels its result drops
    (``"*"`` drops all).  ``writer_factories``/``writer_names`` teach
    the engine which values are checkpoint writers (for the
    record-payload sink).
    """

    parameter_sources: Mapping[str, str] = field(default_factory=dict)
    attribute_sources: Mapping[str, str] = field(default_factory=dict)
    subscript_sources: Mapping[str, str] = field(default_factory=dict)
    call_sanitizers: Mapping[str, FrozenSet[str]] = field(default_factory=dict)
    writer_factories: FrozenSet[str] = frozenset(
        {"CheckpointWriter", "checkpoint_writer"}
    )
    writer_names: FrozenSet[str] = frozenset({"writer"})

    def is_writer_name(self, name: str) -> bool:
        return name in self.writer_names or name.endswith("_writer")


class Hooks(Protocol):
    """What an analyzer plugs into the engine's report pass."""

    def on_call(self, node: ast.Call, scope: "Scope") -> None:
        """Every call expression, with the environment live at it."""

    def on_for(
        self, target: ast.expr, iter_node: ast.expr, scope: "Scope"
    ) -> None:
        """Every iteration: ``for`` statements and comprehension
        generators alike."""


class MultiHooks:
    """Fan one engine pass out to several analyzers' hooks.

    The engine cost (fixpoint + class pre-pass) dominates an analyzer
    run, so analyzers that can share a :class:`TaintSpec` should share
    a pass; each keeps collecting into its own findings list.
    """

    def __init__(self, hooks: Sequence[Hooks]) -> None:
        self._hooks = tuple(hooks)

    def on_call(self, node: ast.Call, scope: "Scope") -> None:
        for hook in self._hooks:
            hook.on_call(node, scope)

    def on_for(
        self, target: ast.expr, iter_node: ast.expr, scope: "Scope"
    ) -> None:
        for hook in self._hooks:
            hook.on_for(target, iter_node, scope)


class Scope:
    """One analysis scope: the environment plus the taint evaluator."""

    def __init__(
        self,
        spec: TaintSpec,
        *,
        self_taint: Optional[Dict[str, Taint]] = None,
        self_kinds: Optional[Dict[str, Kinds]] = None,
        collect_self: bool = False,
    ) -> None:
        self.spec = spec
        self.env_taint: Dict[str, Taint] = {}
        self.env_kinds: Dict[str, Kinds] = {}
        #: Class-level ``self.<attr>`` environment, shared by methods.
        self.self_taint: Dict[str, Taint] = (
            self_taint if self_taint is not None else {}
        )
        self.self_kinds: Dict[str, Kinds] = (
            self_kinds if self_kinds is not None else {}
        )
        #: During the class pre-pass, ``self.X = v`` feeds the maps above.
        self.collect_self = collect_self

    def fork(self) -> "Scope":
        """A child scope seeded with a copy of this environment
        (comprehensions, nested functions)."""
        child = Scope(
            self.spec,
            self_taint=self.self_taint,
            self_kinds=self.self_kinds,
            collect_self=self.collect_self,
        )
        child.env_taint = {k: dict(v) for k, v in self.env_taint.items()}
        child.env_kinds = {k: set(v) for k, v in self.env_kinds.items()}
        return child

    # -- evaluation ----------------------------------------------------

    def taint(self, node: ast.expr) -> Taint:
        """The taint reaching ``node`` under the current environment."""
        if isinstance(node, ast.Name):
            return dict(self.env_taint.get(node.id, {}))
        if isinstance(node, ast.Attribute):
            out = self.taint(node.value)
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                for label, line in self.self_taint.get(node.attr, {}).items():
                    out.setdefault(label, line)
            label_or_none = self.spec.attribute_sources.get(node.attr)
            if label_or_none is not None:
                out.setdefault(label_or_none, node.lineno)
            return out
        if isinstance(node, ast.Subscript):
            out = self.taint(node.value)
            out.update(self.taint(node.slice))
            if (
                isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                label_or_none = self.spec.subscript_sources.get(
                    node.slice.value
                )
                if label_or_none is not None:
                    out.setdefault(label_or_none, node.lineno)
            return out
        if isinstance(node, ast.Call):
            out = {}
            for arg in node.args:
                out.update(self.taint(arg))
            for keyword in node.keywords:
                out.update(self.taint(keyword.value))
            if isinstance(node.func, ast.Attribute):
                out.update(self.taint(node.func.value))
            name = call_name(node)
            if name is not None:
                stripped = self.spec.call_sanitizers.get(name)
                if stripped is not None:
                    if "*" in stripped:
                        return {}
                    for label in stripped:
                        out.pop(label, None)
            return out
        if isinstance(node, ast.BinOp):
            out = self.taint(node.left)
            out.update(self.taint(node.right))
            return out
        if isinstance(node, ast.BoolOp):
            out = {}
            for value in node.values:
                out.update(self.taint(value))
            return out
        if isinstance(node, ast.Compare):
            out = self.taint(node.left)
            for comparator in node.comparators:
                out.update(self.taint(comparator))
            return out
        if isinstance(node, ast.UnaryOp):
            return self.taint(node.operand)
        if isinstance(node, ast.IfExp):
            out = self.taint(node.body)
            out.update(self.taint(node.orelse))
            return out
        if isinstance(node, ast.JoinedStr):
            out = {}
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out.update(self.taint(value.value))
            return out
        if isinstance(node, ast.FormattedValue):
            return self.taint(node.value)
        if isinstance(node, ast.Dict):
            out = {}
            for key in node.keys:
                if key is not None:
                    out.update(self.taint(key))
            for value in node.values:
                out.update(self.taint(value))
            return out
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            out = {}
            for elt in node.elts:
                out.update(self.taint(elt))
            return out
        if isinstance(node, ast.Starred):
            return self.taint(node.value)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._comprehension_taint(node)
        if isinstance(node, ast.NamedExpr):
            value_taint = self.taint(node.value)
            self.bind(node.target, value_taint, self.kinds(node.value))
            return value_taint
        if isinstance(node, ast.Await):
            return self.taint(node.value)
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return self.taint(node.value) if node.value is not None else {}
        if isinstance(node, ast.Slice):
            out = {}
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out.update(self.taint(part))
            return out
        return {}

    def kinds(self, node: ast.expr) -> Kinds:
        """The value kinds of ``node`` (ordering, writer-ness)."""
        if isinstance(node, ast.Name):
            out = set(self.env_kinds.get(node.id, set()))
            if self.spec.is_writer_name(node.id):
                out.add(KIND_WRITER)
            return out
        if isinstance(node, ast.Attribute):
            out = set()
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                out |= self.self_kinds.get(node.attr, set())
            if self.spec.is_writer_name(node.attr):
                out.add(KIND_WRITER)
            return out
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in _UNORDERED_PRODUCERS:
                return {KIND_UNORDERED}
            if name is not None and name in self.spec.writer_factories:
                return {KIND_WRITER}
            if name in _ORDER_SANITIZERS:
                return set()
            if name in _ORDER_PRESERVING:
                out = set()
                for arg in node.args:
                    out |= self.kinds(arg)
                return out
            if name in ("keys", "values", "items", "copy", "union",
                        "intersection", "difference"):
                # Methods whose result inherits the receiver's ordering.
                if isinstance(node.func, ast.Attribute):
                    return self.kinds(node.func.value)
            return set()
        if isinstance(node, ast.Set):
            return {KIND_UNORDERED}
        if isinstance(node, ast.SetComp):
            return {KIND_UNORDERED}
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            # Element order inherits the (first) generator's order.
            out = set()
            for gen in node.generators:
                out |= self.kinds(gen.iter) & {KIND_UNORDERED}
            return out
        if isinstance(node, ast.BinOp):
            return (self.kinds(node.left) | self.kinds(node.right)) & {
                KIND_UNORDERED
            }
        if isinstance(node, ast.IfExp):
            return self.kinds(node.body) | self.kinds(node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self.kinds(node.value)
        if isinstance(node, ast.Starred):
            return self.kinds(node.value)
        return set()

    # -- binding -------------------------------------------------------

    def bind(self, target: ast.expr, taint: Taint, kinds: Kinds) -> None:
        """A reaching definition: assignment kills, aug-ops merge via
        :meth:`merge_into`."""
        if isinstance(target, ast.Name):
            self.env_taint[target.id] = dict(taint)
            self.env_kinds[target.id] = set(kinds)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # Element-wise: each piece conservatively gets the whole
            # value's taint; container kinds do not transfer to elements.
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self.bind(inner, taint, set())
        elif isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.collect_self
            ):
                slot = self.self_taint.setdefault(target.attr, {})
                for label, line in taint.items():
                    slot.setdefault(label, line)
                self.self_kinds.setdefault(target.attr, set()).update(kinds)
        elif isinstance(target, ast.Subscript):
            # ``d[k] = v`` taints the container, never kills it.
            if isinstance(target.value, ast.Name):
                self.merge_into(target.value.id, taint, set())

    def merge_into(self, name: str, taint: Taint, kinds: Kinds) -> None:
        slot = self.env_taint.setdefault(name, {})
        for label, line in taint.items():
            slot.setdefault(label, line)
        self.env_kinds.setdefault(name, set()).update(kinds)

    # -- comprehensions ------------------------------------------------

    def _comprehension_taint(
        self,
        node: "ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp",
    ) -> Taint:
        inner = self.fork()
        strip: Set[str] = set()
        for gen in node.generators:
            iter_taint = inner.taint(gen.iter)
            inner.bind(gen.target, iter_taint, set())
            strip |= _key_filter_labels(gen, inner)
        if isinstance(node, ast.DictComp):
            out = inner.taint(node.key)
            out.update(inner.taint(node.value))
        else:
            out = inner.taint(node.elt)
        for label in strip:
            out.pop(label, None)
        return out


def _key_filter_labels(gen: ast.comprehension, scope: Scope) -> Set[str]:
    """Labels a ``if k not in ("engine", ...)`` clause provably strips.

    Recognises the canonical sanitizer idiom
    ``{k: v for k, v in kw.items() if k not in (<const strings>)}``:
    when the filtered name is the comprehension's key variable and the
    blocklist is all string constants, the listed keys cannot survive
    into the result, so their subscript-source labels are dropped.
    """
    key_names: Set[str] = set()
    if isinstance(gen.target, ast.Name):
        key_names.add(gen.target.id)
    elif isinstance(gen.target, ast.Tuple) and gen.target.elts:
        first = gen.target.elts[0]
        if isinstance(first, ast.Name):
            key_names.add(first.id)
    stripped: Set[str] = set()
    for test in gen.ifs:
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.NotIn)
            and isinstance(test.left, ast.Name)
            and test.left.id in key_names
        ):
            continue
        container = test.comparators[0]
        if not isinstance(container, (ast.Tuple, ast.List, ast.Set)):
            continue
        keys = [
            elt.value
            for elt in container.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        ]
        if len(keys) != len(container.elts):
            continue  # a dynamic element: cannot prove anything
        for key in keys:
            label = scope.spec.subscript_sources.get(key)
            if label is not None:
                stripped.add(label)
    return stripped


def call_name(node: ast.Call) -> Optional[str]:
    """The call's terminal name: ``f(...)`` -> ``f``, ``a.b.c(...)`` ->
    ``c``."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_call_name(node: ast.Call) -> Optional[str]:
    """The dotted form when statically nameable: ``time.time``,
    ``self.rng.random`` -> ``self.rng.random``."""
    parts: List[str] = []
    current: ast.expr = node.func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


class _NullHooks:
    def on_call(self, node: ast.Call, scope: Scope) -> None:
        return None

    def on_for(
        self, target: ast.expr, iter_node: ast.expr, scope: Scope
    ) -> None:
        return None


NULL_HOOKS: Hooks = _NullHooks()


class Engine:
    """Runs the fixpoint + report passes over one module."""

    def __init__(self, spec: TaintSpec, hooks: Hooks) -> None:
        self.spec = spec
        self.hooks = hooks

    # -- public entry --------------------------------------------------

    def run(self, tree: ast.Module) -> None:
        scope = Scope(self.spec)
        self._run_scope(list(tree.body), scope, params=None)

    # -- scope driver --------------------------------------------------

    def _run_scope(
        self,
        body: List[ast.stmt],
        scope: Scope,
        *,
        params: "Optional[ast.arguments]" = None,
    ) -> None:
        if params is not None:
            self._seed_params(params, scope)
        for _ in range(_FIXPOINT_ROUNDS):
            before = self._snapshot(scope)
            self._exec_block(body, scope, report=False)
            if self._snapshot(scope) == before:
                break
        self._exec_block(body, scope, report=True)

    def _seed_params(self, args: ast.arguments, scope: Scope) -> None:
        params = list(args.posonlyargs + args.args + args.kwonlyargs)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                params.append(extra)
        for param in params:
            label = self.spec.parameter_sources.get(param.arg)
            if label is not None:
                scope.env_taint[param.arg] = {label: param.lineno}

    @staticmethod
    def _snapshot(scope: Scope) -> Tuple[object, object, object, object]:
        return (
            {k: frozenset(v) for k, v in scope.env_taint.items()},
            {k: frozenset(v) for k, v in scope.env_kinds.items()},
            {k: frozenset(v) for k, v in scope.self_taint.items()},
            {k: frozenset(v) for k, v in scope.self_kinds.items()},
        )

    # -- statements ----------------------------------------------------

    def _exec_block(
        self, stmts: List[ast.stmt], scope: Scope, *, report: bool
    ) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, scope, report=report)

    def _exec_stmt(self, stmt: ast.stmt, scope: Scope, *, report: bool) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if report:
                self._run_function(stmt, scope)
            return
        if isinstance(stmt, ast.ClassDef):
            if report:
                self._run_class(stmt, scope)
            return
        if isinstance(stmt, ast.Assign):
            self._visit_expr(stmt.value, scope, report=report)
            taint = scope.taint(stmt.value)
            kinds = scope.kinds(stmt.value)
            for target in stmt.targets:
                scope.bind(target, taint, kinds)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._visit_expr(stmt.value, scope, report=report)
                scope.bind(
                    stmt.target, scope.taint(stmt.value), scope.kinds(stmt.value)
                )
            return
        if isinstance(stmt, ast.AugAssign):
            self._visit_expr(stmt.value, scope, report=report)
            if isinstance(stmt.target, ast.Name):
                scope.merge_into(
                    stmt.target.id,
                    scope.taint(stmt.value),
                    scope.kinds(stmt.value) & {KIND_UNORDERED},
                )
            return
        if isinstance(stmt, ast.Expr):
            self._visit_expr(stmt.value, scope, report=report)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_expr(stmt.iter, scope, report=report)
            if report:
                self.hooks.on_for(stmt.target, stmt.iter, scope)
            # Elements of a container: taint flows, the container's
            # unordered-ness does not describe the element itself.
            scope.bind(stmt.target, scope.taint(stmt.iter), set())
            if report:
                # Pre-run the body silently so assignments made late in
                # the body (loop-carried state) are visible to hooks on
                # the reporting run — a second-iteration view.
                self._exec_block(stmt.body, scope, report=False)
                scope.bind(stmt.target, scope.taint(stmt.iter), set())
            self._exec_block(stmt.body, scope, report=report)
            self._exec_block(stmt.orelse, scope, report=report)
            return
        if isinstance(stmt, ast.While):
            self._visit_expr(stmt.test, scope, report=report)
            if report:
                self._exec_block(stmt.body, scope, report=False)
            self._exec_block(stmt.body, scope, report=report)
            self._exec_block(stmt.orelse, scope, report=report)
            return
        if isinstance(stmt, ast.If):
            self._visit_expr(stmt.test, scope, report=report)
            self._exec_block(stmt.body, scope, report=report)
            self._exec_block(stmt.orelse, scope, report=report)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._visit_expr(item.context_expr, scope, report=report)
                if item.optional_vars is not None:
                    scope.bind(
                        item.optional_vars,
                        scope.taint(item.context_expr),
                        scope.kinds(item.context_expr),
                    )
            self._exec_block(stmt.body, scope, report=report)
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, scope, report=report)
            for handler in stmt.handlers:
                self._exec_block(handler.body, scope, report=report)
            self._exec_block(stmt.orelse, scope, report=report)
            self._exec_block(stmt.finalbody, scope, report=report)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._visit_expr(stmt.value, scope, report=report)
            return
        if isinstance(stmt, ast.Raise):
            for part in (stmt.exc, stmt.cause):
                if part is not None:
                    self._visit_expr(part, scope, report=report)
            return
        if isinstance(stmt, ast.Assert):
            self._visit_expr(stmt.test, scope, report=report)
            if stmt.msg is not None:
                self._visit_expr(stmt.msg, scope, report=report)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    scope.env_taint.pop(target.id, None)
                    scope.env_kinds.pop(target.id, None)
            return
        # Anything else (Match, Import, Global, ...): visit embedded
        # expressions and statement blocks generically.
        for child_field, value in ast.iter_fields(stmt):
            del child_field
            if isinstance(value, ast.expr):
                self._visit_expr(value, scope, report=report)
            elif isinstance(value, list):
                exprs = [v for v in value if isinstance(v, ast.expr)]
                for expr in exprs:
                    self._visit_expr(expr, scope, report=report)
                inner = [v for v in value if isinstance(v, ast.stmt)]
                if inner:
                    self._exec_block(inner, scope, report=report)

    # -- expressions (hook traversal) ----------------------------------

    def _visit_expr(self, node: ast.expr, scope: Scope, *, report: bool) -> None:
        """Walk an expression, firing hooks at calls and comprehension
        generators; nested lambdas/comprehensions get forked scopes."""
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Attribute):
                self._visit_expr(node.func.value, scope, report=report)
            for arg in node.args:
                self._visit_expr(arg, scope, report=report)
            for keyword in node.keywords:
                self._visit_expr(keyword.value, scope, report=report)
            if report:
                self.hooks.on_call(node, scope)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            inner = scope.fork()
            for gen in node.generators:
                self._visit_expr(gen.iter, inner, report=report)
                if report:
                    self.hooks.on_for(gen.target, gen.iter, inner)
                inner.bind(gen.target, inner.taint(gen.iter), set())
                for test in gen.ifs:
                    self._visit_expr(test, inner, report=report)
            if isinstance(node, ast.DictComp):
                self._visit_expr(node.key, inner, report=report)
                self._visit_expr(node.value, inner, report=report)
            else:
                self._visit_expr(node.elt, inner, report=report)
            return
        if isinstance(node, ast.Lambda):
            return  # opaque: treated as a value, its body never runs here
        if isinstance(node, ast.NamedExpr):
            self._visit_expr(node.value, scope, report=report)
            scope.bind(node.target, scope.taint(node.value), scope.kinds(node.value))
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._visit_expr(child, scope, report=report)

    # -- functions and classes -----------------------------------------

    def _run_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        outer: Scope,
    ) -> None:
        for decorator in node.decorator_list:
            self._visit_expr(decorator, outer, report=True)
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            self._visit_expr(default, outer, report=True)
        inner = outer.fork()
        self._run_scope(list(node.body), inner, params=node.args)

    def _run_class(self, node: ast.ClassDef, outer: Scope) -> None:
        methods = [
            stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Pre-pass: collect self.<attr> taints/kinds across all methods
        # (two rounds so attributes derived from attributes settle).
        self_taint: Dict[str, Taint] = {}
        self_kinds: Dict[str, Kinds] = {}
        for _ in range(2):
            for method in methods:
                pre = Scope(
                    self.spec,
                    self_taint=self_taint,
                    self_kinds=self_kinds,
                    collect_self=True,
                )
                self._seed_params(method.args, pre)
                silent = Engine(self.spec, NULL_HOOKS)
                silent._exec_block(list(method.body), pre, report=False)
        # Non-method class body (class attributes) runs in the outer scope.
        other = [
            stmt
            for stmt in node.body
            if not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        self._exec_block(other, outer, report=True)
        for stmt in node.body:
            if isinstance(stmt, ast.ClassDef):
                self._run_class(stmt, outer)
        # Main pass per method, with the class attribute environment.
        for method in methods:
            for decorator in method.decorator_list:
                self._visit_expr(decorator, outer, report=True)
            inner = Scope(
                self.spec, self_taint=self_taint, self_kinds=self_kinds
            )
            self._run_scope(list(method.body), inner, params=method.args)


def analyze(tree: ast.Module, spec: TaintSpec, hooks: Hooks) -> None:
    """Run the engine over a parsed module with the given analyzer."""
    Engine(spec, hooks).run(tree)


def build_parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """child -> parent for every node (the ``sorted()``-wrapper check
    climbs this to find order-insensitive consumers)."""
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents
