"""The finding record shared by every analyzer in :mod:`repro.check`.

Analyzers return plain lists of :class:`Finding`; the runner and the
CLI aggregate, render and count them.  ``severity`` is ``"error"`` for
invariant violations (wrong results, model violations, races) and
``"warning"`` for inefficiencies that do not threaten correctness
(dead loads, redundant loads).  Only errors fail ``repro-mmm check``.

Every finding carries a stable ``rule`` id (``analyzer/short-name``,
e.g. ``capacity/ws-overflow`` or ``cost/formula-mismatch``) and derives
a content :meth:`~Finding.fingerprint` from it.  Rule ids name *what*
went wrong independently of the message wording; fingerprints identify
*this* finding across runs, which is what the baseline suppression file
and the SARIF exporter key on.  Line numbers are deliberately excluded
from the fingerprint so lint findings survive unrelated edits above
them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Severity levels, in increasing order of gravity.
WARNING = "warning"
ERROR = "error"

#: Version of the checker as a whole: findings schema, rule set and
#: analyzer semantics.  Bumping it invalidates every incremental-cache
#: entry (the cell fingerprint includes it) and dates SARIF output.
#: v1 = PR-1 analyzers; v2 = rule ids + cost-conformance analyzer;
#: v3 = tight-bound conformance + optimality-gap certificate +
#: engine-conformance analyzer; v4 = rule registry, inline
#: suppressions and the dataflow purity/determinism analyzers.
CHECKER_VERSION = 4


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a schedule analyzer or the linter.

    Attributes
    ----------
    analyzer:
        Which pass produced the finding (``capacity``, ``presence``,
        ``coverage``, ``race``, ``cost``, ``lint`` or ``schedule``).
    severity:
        ``"error"`` or ``"warning"``.
    message:
        Human-readable description, self-contained.
    algorithm, machine:
        The schedule and machine under analysis (empty for lint).
    event:
        Global sequence number of the offending event in the recorded
        log, when applicable.
    location:
        ``path:line`` source position (lint findings only).
    rule:
        Stable ``analyzer/short-name`` id of the violated invariant;
        falls back to the bare analyzer name when unset.
    """

    analyzer: str
    severity: str
    message: str
    algorithm: str = ""
    machine: str = ""
    event: Optional[int] = None
    location: str = ""
    rule: str = ""

    @property
    def rule_id(self) -> str:
        """The stable rule id (``analyzer`` when no rule was assigned)."""
        return self.rule or self.analyzer

    def fingerprint(self) -> str:
        """Stable content hash identifying this finding across runs.

        Hashes rule, severity, schedule context, the location's *file*
        (not its line — edits above a lint finding must not re-open it)
        and the message.  Schedules are deterministic, so messages are
        reproducible run to run.
        """
        loc_file = self.location.rsplit(":", 1)[0] if self.location else ""
        payload = "|".join(
            (self.rule_id, self.severity, self.algorithm, self.machine,
             loc_file, self.message)
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for ``--json`` output and the report cache."""
        out: Dict[str, Any] = {
            "analyzer": self.analyzer,
            "severity": self.severity,
            "message": self.message,
            "rule": self.rule_id,
            "fingerprint": self.fingerprint(),
        }
        if self.algorithm:
            out["algorithm"] = self.algorithm
        if self.machine:
            out["machine"] = self.machine
        if self.event is not None:
            out["event"] = self.event
        if self.location:
            out["location"] = self.location
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_dict` output (cache replay)."""
        return cls(
            analyzer=str(data["analyzer"]),
            severity=str(data["severity"]),
            message=str(data["message"]),
            algorithm=str(data.get("algorithm", "")),
            machine=str(data.get("machine", "")),
            event=data.get("event"),
            location=str(data.get("location", "")),
            rule=str(data.get("rule", "")),
        )

    def render(self) -> str:
        """One-line rendering for terminal output."""
        where = ""
        if self.algorithm:
            where = f" [{self.algorithm}" + (
                f" @ {self.machine}]" if self.machine else "]"
            )
        elif self.location:
            where = f" [{self.location}]"
        at = f" (event {self.event})" if self.event is not None else ""
        return f"{self.severity}: {self.rule_id}{where}: {self.message}{at}"


@dataclass
class FindingLimiter:
    """Cap the findings one analyzer emits so broken schedules do not flood.

    After ``limit`` findings a single summary entry is appended and
    further :meth:`add` calls are dropped (but still counted).
    """

    analyzer: str
    limit: int = 25
    findings: List[Finding] = field(default_factory=list)
    dropped: int = 0

    def add(self, finding: Finding) -> None:
        if len(self.findings) < self.limit:
            self.findings.append(finding)
        else:
            self.dropped += 1

    def results(self) -> List[Finding]:
        if self.dropped:
            return self.findings + [
                Finding(
                    analyzer=self.analyzer,
                    severity=WARNING,
                    message=f"{self.dropped} further findings suppressed",
                    rule=f"{self.analyzer}/suppressed",
                )
            ]
        return list(self.findings)
