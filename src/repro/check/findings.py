"""The finding record shared by every analyzer in :mod:`repro.check`.

Analyzers return plain lists of :class:`Finding`; the runner and the
CLI aggregate, render and count them.  ``severity`` is ``"error"`` for
invariant violations (wrong results, model violations, races) and
``"warning"`` for inefficiencies that do not threaten correctness
(dead loads, redundant loads).  Only errors fail ``repro-mmm check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Severity levels, in increasing order of gravity.
WARNING = "warning"
ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a schedule analyzer or the linter.

    Attributes
    ----------
    analyzer:
        Which pass produced the finding (``capacity``, ``presence``,
        ``coverage``, ``race``, ``lint`` or ``schedule``).
    severity:
        ``"error"`` or ``"warning"``.
    message:
        Human-readable description, self-contained.
    algorithm, machine:
        The schedule and machine under analysis (empty for lint).
    event:
        Global sequence number of the offending event in the recorded
        log, when applicable.
    location:
        ``path:line`` source position (lint findings only).
    """

    analyzer: str
    severity: str
    message: str
    algorithm: str = ""
    machine: str = ""
    event: Optional[int] = None
    location: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form for ``--json`` output."""
        out: Dict[str, Any] = {
            "analyzer": self.analyzer,
            "severity": self.severity,
            "message": self.message,
        }
        if self.algorithm:
            out["algorithm"] = self.algorithm
        if self.machine:
            out["machine"] = self.machine
        if self.event is not None:
            out["event"] = self.event
        if self.location:
            out["location"] = self.location
        return out

    def render(self) -> str:
        """One-line rendering for terminal output."""
        where = ""
        if self.algorithm:
            where = f" [{self.algorithm}" + (
                f" @ {self.machine}]" if self.machine else "]"
            )
        elif self.location:
            where = f" [{self.location}]"
        at = f" (event {self.event})" if self.event is not None else ""
        return f"{self.severity}: {self.analyzer}{where}: {self.message}{at}"


@dataclass
class FindingLimiter:
    """Cap the findings one analyzer emits so broken schedules do not flood.

    After ``limit`` findings a single summary entry is appended and
    further :meth:`add` calls are dropped (but still counted).
    """

    analyzer: str
    limit: int = 25
    findings: List[Finding] = field(default_factory=list)
    dropped: int = 0

    def add(self, finding: Finding) -> None:
        if len(self.findings) < self.limit:
            self.findings.append(finding)
        else:
            self.dropped += 1

    def results(self) -> List[Finding]:
        if self.dropped:
            return self.findings + [
                Finding(
                    analyzer=self.analyzer,
                    severity=WARNING,
                    message=f"{self.dropped} further findings suppressed",
                )
            ]
        return list(self.findings)
