"""Determinism rules for the fingerprint/checkpoint/serde paths.

Resume bit-identity and cross-machine manifest comparison only work if
the modules that *produce* persisted bytes are deterministic functions
of their inputs.  Four environment leaks account for nearly every
real-world violation, and each gets a rule:

``determinism/wall-clock``
    ``time.time``/``time.time_ns``/``datetime.now``/``utcnow``/
    ``today`` reads.  ``time.perf_counter``/``monotonic`` are *not*
    flagged: elapsed-time telemetry is explicitly excluded from
    identity (see :mod:`repro.store.serde`).
``determinism/rng``
    ``random.*``, ``os.urandom``, ``secrets.*``, ``uuid.uuid1/4`` —
    unseeded entropy has no place on a serde path.
``determinism/unsorted-walk``
    ``os.listdir``/``os.walk``/``os.scandir``/``Path.iterdir``/
    ``glob``/``rglob`` results consumed order-sensitively.  Filesystem
    enumeration order is filesystem-specific; the rule is satisfied by
    wrapping the walk in an order-insensitive consumer (``sorted``,
    ``min``/``max``, ``len``, ``set``, a membership test, ...) within
    the same statement.
``determinism/set-order``
    Iterating a value the dataflow engine knows to be an unordered
    ``set``/``frozenset`` (including one built in ``__init__`` and
    iterated from another method), or passing one to ``join``/
    ``json.dumps``.  ``sorted(...)`` strips the kind and is the fix.
``determinism/hash-in-key``
    The builtin ``hash()`` — salted per-process by ``PYTHONHASHSEED``
    for ``str``/``bytes`` — in modules whose keys are persisted.  Use
    ``hashlib`` digests instead.

The rules run only on modules that feed fingerprints, checkpoints,
manifests or serde (the lint orchestrator owns the scope list, plus
``tests/`` for hygiene); flagging wall-clock reads in, say, the
benchmark harness would be noise.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.check.dataflow import (
    KIND_UNORDERED,
    Scope,
    TaintSpec,
    analyze,
    build_parent_map,
    call_name,
    dotted_call_name,
)
from repro.check.findings import ERROR, Finding

#: Dotted call names that read the wall clock.
_WALL_CLOCK_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
)

#: Terminal names that draw entropy when the receiver chain includes
#: the ``random`` module.
_RNG_TERMINALS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "randbytes", "getrandbits", "rand",
        "randn", "normal", "permutation",
    }
)

#: Exact dotted entropy sources outside the ``random`` module.
_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Filesystem-enumeration calls whose order is filesystem-specific.
_FS_WALKS = frozenset(
    {"listdir", "iterdir", "glob", "rglob", "scandir", "walk"}
)

#: Consumers that make enumeration order irrelevant.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)


def _finding(
    rule: str, message: str, filename: str, line: int
) -> Finding:
    return Finding(
        "determinism",
        ERROR,
        message,
        location=f"{filename}:{line}",
        rule=f"determinism/{rule}",
    )


class DeterminismHooks:
    """Engine hooks; collects findings on :attr:`findings`.

    Public so the lint orchestrator can run determinism and purity in
    one shared dataflow pass (the engine cost dominates the scan).
    The hooks ignore taint labels entirely — only kinds and call shapes
    matter — so they are safe to run under any :class:`TaintSpec`.
    """

    def __init__(
        self, filename: str, parents: Dict[ast.AST, ast.AST]
    ) -> None:
        self.filename = filename
        self.parents = parents
        self.findings: List[Finding] = []
        #: (rule, line) pairs already reported — the fixpoint engine
        #: visits comprehension generators once, but a call can sit in
        #: both an iter expression and a generic walk.
        self._seen: Set[Tuple[str, int]] = set()

    def _emit(self, rule: str, message: str, line: int) -> None:
        if (rule, line) in self._seen:
            return
        self._seen.add((rule, line))
        self.findings.append(_finding(rule, message, self.filename, line))

    # -- call sinks ----------------------------------------------------

    def on_call(self, node: ast.Call, scope: Scope) -> None:
        dotted = dotted_call_name(node)
        parts = dotted.split(".") if dotted else []
        name = call_name(node)

        if len(parts) >= 2 and (parts[-2], parts[-1]) in _WALL_CLOCK_SUFFIXES:
            self._emit(
                "wall-clock",
                f"{dotted}() reads the wall clock on a fingerprint/serde "
                "path; derive timestamps outside identity-bearing data "
                "(time.perf_counter is fine for telemetry)",
                node.lineno,
            )
        if dotted is not None and self._is_rng(dotted, parts):
            self._emit(
                "rng",
                f"{dotted}() draws unseeded entropy on a fingerprint/serde "
                "path; persisted bytes must be deterministic",
                node.lineno,
            )
        if name in _FS_WALKS and not self._order_insensitive(node):
            self._emit(
                "unsorted-walk",
                f"{name}() enumeration order is filesystem-specific; wrap "
                "the walk in sorted() (or another order-insensitive "
                "consumer) before it reaches persisted or replayed state",
                node.lineno,
            )
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            self._emit(
                "hash-in-key",
                "builtin hash() is salted per-process by PYTHONHASHSEED; "
                "use a hashlib digest for any key that outlives the "
                "process",
                node.lineno,
            )
        if name == "join" and self._unordered_args(node, scope):
            self._emit(
                "set-order",
                "join() over an unordered set produces "
                "nondeterministic output; sort it first",
                node.lineno,
            )
        if name in ("dumps", "dump") and not self._sorts_keys(node):
            if self._unordered_args(node, scope):
                self._emit(
                    "set-order",
                    f"{name}() serializes an unordered set-derived value; "
                    "sort it first",
                    node.lineno,
                )

    # -- iteration sinks -----------------------------------------------

    def on_for(
        self, target: ast.expr, iter_node: ast.expr, scope: Scope
    ) -> None:
        if KIND_UNORDERED in scope.kinds(iter_node):
            self._emit(
                "set-order",
                "iteration over an unordered set reaches serialized "
                "output in this module; iterate sorted(...) instead",
                iter_node.lineno,
            )

    # -- helpers -------------------------------------------------------

    @staticmethod
    def _is_rng(dotted: str, parts: List[str]) -> bool:
        if dotted in _ENTROPY_CALLS:
            return True
        if parts[0] == "random" and len(parts) > 1:
            return True
        return "random" in parts[:-1] and parts[-1] in _RNG_TERMINALS

    @staticmethod
    def _sorts_keys(node: ast.Call) -> bool:
        for keyword in node.keywords:
            if (
                keyword.arg == "sort_keys"
                and isinstance(keyword.value, ast.Constant)
                and bool(keyword.value.value)
            ):
                return True
        return False

    def _unordered_args(self, node: ast.Call, scope: Scope) -> bool:
        return any(
            KIND_UNORDERED in scope.kinds(arg)
            for arg in list(node.args)
            + [kw.value for kw in node.keywords]
        )

    def _order_insensitive(self, node: ast.Call) -> bool:
        """Whether an enclosing expression (same statement) consumes the
        walk order-insensitively."""
        current: ast.AST = node
        while True:
            parent = self.parents.get(current)
            if parent is None or isinstance(parent, ast.stmt):
                # ``for x in sorted(...)`` puts the sanitizer inside the
                # expression, so reaching the statement means no
                # sanitizer was found — except a ``with`` over scandir,
                # which is a resource acquisition, not an iteration.
                return isinstance(parent, (ast.With, ast.AsyncWith))
            if (
                isinstance(parent, ast.Call)
                and call_name(parent) in _ORDER_INSENSITIVE_CONSUMERS
            ):
                return True
            if isinstance(parent, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops
            ):
                return True
            current = parent


def check_determinism(
    tree: ast.Module, filename: str, *, source: Optional[str] = None
) -> List[Finding]:
    """All ``determinism/*`` findings for one parsed, in-scope module.

    ``source`` is unused (signature symmetry with the purity pass);
    suppression handling lives in the lint orchestrator.
    """
    del source
    hooks = DeterminismHooks(filename, build_parent_map(tree))
    analyze(tree, TaintSpec(), hooks)
    return hooks.findings
