"""Fingerprint purity: no engine knob may reach a fingerprint.

Resume correctness (``docs/RUNSTORE.md``) rests on one invariant: a
cell fingerprint is a pure function of the *declared* experiment
parameters — algorithm, setting, kwargs-after-knob-filtering, machine,
sweep variable and tile sizes — and never of how the sweep happened to
be executed.  ``engine=``/``strict_engine`` choose bit-identical code
paths; ``workers``/``cell_timeout``/``retries``/``backoff`` shape
scheduling; manifest/run-dir paths are machine-local.  If any of them
leaked into :func:`repro.store.checkpoint.cell_fingerprint` or into a
checkpoint record payload, a resume on a different machine (or with
different parallelism) would silently recompute every cell — or worse,
collide.

Until PR 7 that invariant lived in docstrings.  This analyzer proves it
statically with the :mod:`repro.check.dataflow` engine:

* **Sources** — the knob names, wherever they appear: as parameters
  (``def sweep(..., workers=None)``), as attributes (``self.workers``),
  or as constant subscripts (``kwargs["engine"]``).  Matching on the
  conventional names keeps the analysis intraprocedural yet effective:
  a knob threaded through calls is re-detected at every hop.
* **Sanitizer** — the canonical key-filter idiom
  ``{k: v for k, v in kwargs.items() if k not in ("engine", ...)}``
  provably strips the listed knobs.
* **Sinks** — every argument of a ``cell_fingerprint(...)`` call, and
  every argument of ``.append(...)`` on a checkpoint writer (a value
  named ``writer``/``*_writer`` or assigned from
  ``CheckpointWriter``/``checkpoint_writer``).

Any knob→sink flow is rule ``purity/knob-in-fingerprint``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.check.dataflow import (
    KIND_WRITER,
    Scope,
    TaintSpec,
    analyze,
    call_name,
)
from repro.check.findings import ERROR, Finding

#: The engine/execution knobs.  Every name is simultaneously a
#: parameter source, an attribute source and a subscript-key source.
KNOBS = (
    "engine",
    "strict_engine",
    "workers",
    "cell_timeout",
    "cell_timeout_s",
    "retries",
    "backoff",
    "backoff_s",
    "chunksize",
    "manifest_path",
    "run_dir",
    "drain_grace_s",
)

#: The fingerprint sink.
_FINGERPRINT_CALL = "cell_fingerprint"


def purity_spec() -> TaintSpec:
    """The taint spec: every knob is a source under all three shapes."""
    labels: Dict[str, str] = {knob: knob for knob in KNOBS}
    return TaintSpec(
        parameter_sources=labels,
        attribute_sources=labels,
        subscript_sources=labels,
    )


class PurityHooks:
    """Engine hooks; collects findings on :attr:`findings`.

    Public so the lint orchestrator can run purity and determinism in
    one shared dataflow pass (the engine cost dominates the scan).
    """

    def __init__(self, filename: str) -> None:
        self.filename = filename
        self.findings: List[Finding] = []

    def on_call(self, node: ast.Call, scope: Scope) -> None:
        name = call_name(node)
        if name == _FINGERPRINT_CALL:
            self._check_args(node, scope, sink="cell fingerprint")
        elif (
            name == "append"
            and isinstance(node.func, ast.Attribute)
            and KIND_WRITER in scope.kinds(node.func.value)
        ):
            self._check_args(node, scope, sink="checkpoint record payload")

    def on_for(
        self, target: ast.expr, iter_node: ast.expr, scope: Scope
    ) -> None:
        return None

    def _check_args(self, node: ast.Call, scope: Scope, *, sink: str) -> None:
        slots: List[tuple[str, ast.expr]] = [
            (f"positional #{i}", arg) for i, arg in enumerate(node.args)
        ]
        slots += [
            (f"{kw.arg}=" if kw.arg is not None else "**", kw.value)
            for kw in node.keywords
        ]
        for slot, expr in slots:
            taint = scope.taint(expr)
            for knob in KNOBS:
                if knob in taint:
                    self.findings.append(
                        Finding(
                            "purity",
                            ERROR,
                            f"engine knob {knob!r} (entered line "
                            f"{taint[knob]}) flows into the {sink} via "
                            f"argument {slot}; fingerprints must be pure "
                            "functions of declared parameters "
                            "(docs/RUNSTORE.md)",
                            location=f"{self.filename}:{node.lineno}",
                            rule="purity/knob-in-fingerprint",
                        )
                    )


def check_purity(
    tree: ast.Module, filename: str, *, source: Optional[str] = None
) -> List[Finding]:
    """``purity/knob-in-fingerprint`` findings for one parsed module.

    ``source`` is unused (signature symmetry with the determinism
    pass); suppression handling lives in the lint orchestrator.
    """
    del source
    hooks = PurityHooks(filename)
    analyze(tree, purity_spec(), hooks)
    return hooks.findings
