"""SARIF 2.1.0 export so checker findings annotate code on GitHub.

The Static Analysis Results Interchange Format is what GitHub code
scanning (and most editors) ingest: one ``run`` per tool, a ``rules``
catalogue, and per-finding ``results`` carrying a level, a message, a
physical location and stable ``partialFingerprints``.  We map:

* lint findings → their recorded ``path:line``;
* schedule findings (capacity, presence, coverage, race, cost,
  schedule) → line 1 of the source file defining the offending
  algorithm class, which is where a human starts reading anyway;
* :meth:`Finding.fingerprint` → ``partialFingerprints`` under the
  ``reproCheck/v1`` key, so GitHub tracks a finding's identity across
  pushes exactly like the baseline file does.

Only the subset of SARIF that code scanning consumes is emitted; the
document validates against the 2.1.0 schema.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.findings import CHECKER_VERSION, ERROR, Finding
from repro.check.rules import REGISTRY
from repro.store.atomic import atomic_write_text

#: The canonical 2.1.0 schema URI GitHub validates against.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

#: Rule id → short description, derived from the registry — the
#: registry is the single source of truth; this mapping is kept for
#: backward compatibility with earlier importers.
RULE_DESCRIPTIONS: Dict[str, str] = {
    rule.id: rule.help for rule in REGISTRY.all()
}


def _relativize(path: str, root: Path) -> str:
    """URI for a source path, repo-relative when possible."""
    try:
        return Path(path).resolve().relative_to(root).as_posix()
    except ValueError:
        return Path(path).as_posix()


def _algorithm_location(algorithm: str, root: Path) -> Tuple[str, int]:
    """``(uri, line)`` of the module defining a registered algorithm."""
    from repro.algorithms.registry import get_algorithm
    from repro.exceptions import ReproError

    try:
        cls = get_algorithm(algorithm)
        source = inspect.getsourcefile(cls)
    except (ReproError, TypeError):
        source = None
    if source is None:
        return "src/repro/check/runner.py", 1
    return _relativize(source, root), 1


def _finding_location(finding: Finding, root: Path) -> Tuple[str, int]:
    if finding.location:
        path, _, line = finding.location.rpartition(":")
        if path and line.isdigit():
            return _relativize(path, root), max(int(line), 1)
        return _relativize(finding.location, root), 1
    if finding.algorithm:
        return _algorithm_location(finding.algorithm, root)
    return "src/repro/check/runner.py", 1


def _result(finding: Finding, root: Path) -> Dict[str, Any]:
    uri, line = _finding_location(finding, root)
    message = finding.message
    if finding.algorithm:
        where = finding.algorithm + (f" @ {finding.machine}" if finding.machine else "")
        message = f"[{where}] {message}"
    return {
        "ruleId": finding.rule_id,
        "level": "error" if finding.severity == ERROR else "warning",
        "message": {"text": message},
        "partialFingerprints": {"reproCheck/v1": finding.fingerprint()},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": line},
                }
            }
        ],
    }


def to_sarif(
    findings: Sequence[Finding], *, root: Optional[Path] = None
) -> Dict[str, Any]:
    """Render findings as a single-run SARIF 2.1.0 document."""
    base = (root or Path.cwd()).resolve()
    rule_ids = sorted({f.rule_id for f in findings} | set(RULE_DESCRIPTIONS))
    rules: List[Dict[str, Any]] = []
    for rule_id in rule_ids:
        rule = REGISTRY.get(rule_id)
        entry: Dict[str, Any] = {
            "id": rule_id,
            "shortDescription": {
                "text": rule.help if rule is not None else rule_id
            },
        }
        if rule is not None:
            # Full registry metadata so code scanning surfaces rule
            # docs (tier, default level) instead of a bare id.
            entry["fullDescription"] = {
                "text": f"{rule.help}. "
                f"Emitted by the {rule.tier!r} analysis tier of "
                "repro-mmm check; see docs/CHECKER.md for the rule "
                "catalogue and the suppression syntax."
            }
            entry["defaultConfiguration"] = {
                "level": "error" if rule.severity == ERROR else "warning",
                "enabled": rule.enabled,
            }
            entry["properties"] = {"tier": rule.tier}
        rules.append(entry)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-mmm-check",
                        "informationUri": "https://example.invalid/repro-mmm",
                        "version": f"{CHECKER_VERSION}.0.0",
                        "rules": rules,
                    }
                },
                "results": [_result(f, base) for f in findings],
            }
        ],
    }


def write_sarif(
    path: Path, findings: Sequence[Finding], *, root: Optional[Path] = None
) -> None:
    """Atomically serialize :func:`to_sarif` output to ``path``."""
    document = to_sarif(findings, root=root)
    atomic_write_text(path, json.dumps(document, indent=2) + "\n")
