"""SARIF 2.1.0 export so checker findings annotate code on GitHub.

The Static Analysis Results Interchange Format is what GitHub code
scanning (and most editors) ingest: one ``run`` per tool, a ``rules``
catalogue, and per-finding ``results`` carrying a level, a message, a
physical location and stable ``partialFingerprints``.  We map:

* lint findings → their recorded ``path:line``;
* schedule findings (capacity, presence, coverage, race, cost,
  schedule) → line 1 of the source file defining the offending
  algorithm class, which is where a human starts reading anyway;
* :meth:`Finding.fingerprint` → ``partialFingerprints`` under the
  ``reproCheck/v1`` key, so GitHub tracks a finding's identity across
  pushes exactly like the baseline file does.

Only the subset of SARIF that code scanning consumes is emitted; the
document validates against the 2.1.0 schema.
"""

from __future__ import annotations

import inspect
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.check.findings import CHECKER_VERSION, ERROR, Finding
from repro.store.atomic import atomic_write_text

#: The canonical 2.1.0 schema URI GitHub validates against.
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"

#: Rule id → short description, for the driver's rule catalogue.
RULE_DESCRIPTIONS: Dict[str, str] = {
    "capacity/ws-overflow": "Explicit working set exceeds a cache capacity",
    "capacity/param-constraint": "Tile parameters violate a paper-§3 cache constraint",
    "presence/load-absent": "Distributed load of a block absent from the shared cache",
    "presence/inclusion": "Shared eviction while a core still holds the block",
    "presence/spurious-evict": "Eviction of a non-resident block",
    "presence/absent-operand": "Compute touches a block absent from the core's cache",
    "presence/redundant-load": "Load of an already-resident block",
    "presence/dead-load": "Block loaded and evicted without a single use",
    "presence/leaked-resident": "Block still resident when the schedule ends",
    "coverage/wrong-matrix": "Compute operands drawn from the wrong matrices",
    "coverage/inconsistent-update": "Update coordinates are not C[i,j] += A[i,k]*B[k,j]",
    "coverage/out-of-space": "Update outside the m*n*z iteration space",
    "coverage/duplicate-update": "Update emitted more than once",
    "coverage/missing-update": "C cell accumulated fewer than z contributions",
    "race/write-write": "Two cores write one block in the same epoch",
    "race/read-write": "A core reads a block another core concurrently writes",
    "cost/formula-mismatch": "Counted misses contradict the closed-form prediction",
    "cost/formula-ratio": "Counted misses leave the ragged-tile envelope of the formula",
    "cost/below-lower-bound": "Counted misses beat the Loomis-Whitney lower bound",
    "cost/below-tight-bound": "Counted misses beat the strongest (tight) lower bound",
    "cost/tdata-mismatch": "Tdata from counted misses disagrees with the prediction",
    "gap/regression": "A certified optimality gap regressed against the baseline",
    "gap/uncertified-algorithm": "An algorithm lost its near-optimality certificate",
    "engine/silent-fallback": "Configuration silently falls back from replay to step",
    "schedule/raised": "Schedule raised while being recorded",
    "lint/explicit-guard": "Cache directive not wrapped in 'if ctx.explicit'",
    "lint/unregistered-algorithm": "Concrete schedule missing from the registry",
    "lint/mutable-default": "Mutable default argument",
    "lint/float-equality": "Equality comparison on a floating-point Tdata value",
    "lint/dead-branch": "Branch condition is a compile-time constant",
    "lint/init-self-call": "Explicit self.__init__(...) call used as a reset",
    "lint/nonatomic-artifact-write": "Artifact written without the atomic store helper",
    "lint/fallback-telemetry": "Engine-fallback site does not record telemetry",
    "lint/syntax": "Source file does not parse",
}


def _relativize(path: str, root: Path) -> str:
    """URI for a source path, repo-relative when possible."""
    try:
        return Path(path).resolve().relative_to(root).as_posix()
    except ValueError:
        return Path(path).as_posix()


def _algorithm_location(algorithm: str, root: Path) -> Tuple[str, int]:
    """``(uri, line)`` of the module defining a registered algorithm."""
    from repro.algorithms.registry import get_algorithm
    from repro.exceptions import ReproError

    try:
        cls = get_algorithm(algorithm)
        source = inspect.getsourcefile(cls)
    except (ReproError, TypeError):
        source = None
    if source is None:
        return "src/repro/check/runner.py", 1
    return _relativize(source, root), 1


def _finding_location(finding: Finding, root: Path) -> Tuple[str, int]:
    if finding.location:
        path, _, line = finding.location.rpartition(":")
        if path and line.isdigit():
            return _relativize(path, root), max(int(line), 1)
        return _relativize(finding.location, root), 1
    if finding.algorithm:
        return _algorithm_location(finding.algorithm, root)
    return "src/repro/check/runner.py", 1


def _result(finding: Finding, root: Path) -> Dict[str, Any]:
    uri, line = _finding_location(finding, root)
    message = finding.message
    if finding.algorithm:
        where = finding.algorithm + (f" @ {finding.machine}" if finding.machine else "")
        message = f"[{where}] {message}"
    return {
        "ruleId": finding.rule_id,
        "level": "error" if finding.severity == ERROR else "warning",
        "message": {"text": message},
        "partialFingerprints": {"reproCheck/v1": finding.fingerprint()},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri},
                    "region": {"startLine": line},
                }
            }
        ],
    }


def to_sarif(
    findings: Sequence[Finding], *, root: Optional[Path] = None
) -> Dict[str, Any]:
    """Render findings as a single-run SARIF 2.1.0 document."""
    base = (root or Path.cwd()).resolve()
    rule_ids = sorted({f.rule_id for f in findings} | set(RULE_DESCRIPTIONS))
    rules: List[Dict[str, Any]] = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": RULE_DESCRIPTIONS.get(rule_id, rule_id)
            },
        }
        for rule_id in rule_ids
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-mmm-check",
                        "informationUri": "https://example.invalid/repro-mmm",
                        "version": f"{CHECKER_VERSION}.0.0",
                        "rules": rules,
                    }
                },
                "results": [_result(f, base) for f in findings],
            }
        ],
    }


def write_sarif(
    path: Path, findings: Sequence[Finding], *, root: Optional[Path] = None
) -> None:
    """Atomically serialize :func:`to_sarif` output to ``path``."""
    document = to_sarif(findings, root=root)
    atomic_write_text(path, json.dumps(document, indent=2) + "\n")
