"""Orchestration: record schedules and run every analyzer over them.

:func:`analyze_schedule` proves one algorithm instance; :func:`check_all`
spans the registered algorithm × machine-preset matrix the way the
experiment harness does, choosing per-cell matrix orders that exercise
both the evenly-tiled and the ragged-edge paths of each schedule while
staying in static-analysis (not simulation) territory time-wise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.check.capacity import check_capacity, check_parameters, working_set_peaks
from repro.check.coverage import check_coverage
from repro.check.events import AnalysisContext
from repro.check.findings import ERROR, Finding
from repro.check.presence import check_presence
from repro.check.races import check_races
from repro.exceptions import ReproError
from repro.model.machine import PRESETS, MulticoreMachine


@dataclass
class ScheduleReport:
    """Outcome of statically analyzing one schedule instance."""

    algorithm: str
    machine: str
    m: int
    n: int
    z: int
    events: int
    computes: int
    peak_shared: int
    peak_dist: List[int]
    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == ERROR)

    @property
    def ok(self) -> bool:
        return self.errors == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "machine": self.machine,
            "m": self.m,
            "n": self.n,
            "z": self.z,
            "events": self.events,
            "computes": self.computes,
            "peak_shared": self.peak_shared,
            "peak_dist": list(self.peak_dist),
            "findings": [f.to_dict() for f in self.findings],
        }


def analyze_schedule(
    alg: MatmulAlgorithm,
    *,
    machine_label: str = "",
    limit: int = 25,
) -> ScheduleReport:
    """Record ``alg``'s schedule symbolically and run every analyzer.

    Capacity and presence checking apply only to schedules that carry
    explicit directives (``supports_ideal``); coverage and race
    detection always apply — a compute-only schedule is one concurrent
    epoch, so disjoint ``C`` ownership is still proved.
    """
    machine = alg.machine
    label = machine_label or machine.name or f"p={machine.p},cs={machine.cs},cd={machine.cd}"
    ctx = AnalysisContext(machine.p)
    alg.run(ctx)
    events = ctx.events

    findings: List[Finding] = check_parameters(alg, machine=label)
    common: Dict[str, Any] = dict(algorithm=alg.name, machine=label, limit=limit)
    if ctx.directives:
        findings += check_capacity(events, machine.cs, machine.cd, machine.p, **common)
        findings += check_presence(events, machine.p, **common)
    findings += check_coverage(events, alg.m, alg.n, alg.z, **common)
    findings += check_races(events, machine.p, **common)

    peak_shared, peak_dist = working_set_peaks(events, machine.p)
    return ScheduleReport(
        algorithm=alg.name,
        machine=label,
        m=alg.m,
        n=alg.n,
        z=alg.z,
        events=len(events),
        computes=ctx.comp_total,
        peak_shared=peak_shared,
        peak_dist=peak_dist,
        findings=findings,
    )


def suggested_orders(
    cls: Type[MatmulAlgorithm], machine: MulticoreMachine
) -> Tuple[int, ...]:
    """Matrix orders that exercise a schedule's tiling on ``machine``.

    Derived from the schedule's natural tile side (λ, ``√p·µ``, α, t):
    a multi-tile evenly-divisible order plus a ragged order for small
    tiles; a single ragged order for large tiles (keeps the biggest
    presets — λ = 30 at q32 — within a fraction of a second).
    """
    probe = cls(machine, 1, 1, 1)
    params = probe.parameters()
    sides = [
        v
        for k, v in params.items()
        if k in ("lambda", "tile", "alpha", "t") and isinstance(v, int)
    ]
    if sides:
        tile = max(sides)
    else:
        # Grid-partitioned schedules (outer-product, cannon): any order
        # works; pick a couple of grid multiples ± a ragged remainder.
        tile = int(params.get("grid", 1)) * 2
    tile = max(tile, 1)
    if tile <= 10:
        return (2 * tile, 2 * tile + 3)
    return (tile + 3,)


def check_all(
    algorithms: Optional[Iterable[str]] = None,
    machines: Optional[Dict[str, MulticoreMachine]] = None,
    *,
    orders: Optional[Sequence[int]] = None,
    limit: int = 25,
) -> List[ScheduleReport]:
    """Analyze every algorithm × machine cell; returns one report each.

    Cells whose parameters are infeasible on a machine (e.g. a
    non-square core grid for Algorithm 2) are skipped, mirroring the
    experiment harness.  A cell that *raises* mid-schedule is reported
    as a single ``schedule`` error finding rather than aborting the
    sweep.
    """
    if algorithms is None:
        algorithms = algorithm_names(include_extras=True)
    if machines is None:
        machines = dict(PRESETS)
    reports: List[ScheduleReport] = []
    for name in algorithms:
        cls = get_algorithm(name)
        for key, machine in machines.items():
            try:
                cell_orders = tuple(orders) if orders else suggested_orders(cls, machine)
            except ReproError:
                continue  # no feasible parameters on this machine
            for order in cell_orders:
                try:
                    alg = cls(machine, order, order, order)
                except ReproError:
                    continue
                try:
                    reports.append(analyze_schedule(alg, machine_label=key, limit=limit))
                except ReproError as exc:
                    reports.append(
                        ScheduleReport(
                            algorithm=name,
                            machine=key,
                            m=order,
                            n=order,
                            z=order,
                            events=0,
                            computes=0,
                            peak_shared=0,
                            peak_dist=[],
                            findings=[
                                Finding(
                                    "schedule",
                                    ERROR,
                                    f"schedule raised while recording: {exc}",
                                    algorithm=name,
                                    machine=key,
                                )
                            ],
                        )
                    )
    return reports
