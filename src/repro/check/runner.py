"""Orchestration: record schedules and run every analyzer over them.

:func:`analyze_schedule` proves one algorithm instance; :func:`check_all`
spans the registered algorithm × machine-preset matrix the way the
experiment harness does, choosing per-cell matrix orders that exercise
both the evenly-tiled and the ragged-edge paths of each schedule while
staying in static-analysis (not simulation) territory time-wise.

Cells with no feasible parameters on a machine (e.g. a non-square core
grid for Algorithm 2) are not silently dropped: they come back as
``status="skipped"`` reports carrying the reason, so a consumer (CI,
``--json``) can tell an intentionally sparse matrix from an
accidentally empty one.  Pass a
:class:`~repro.check.incremental.ReportCache` to reuse the reports of
cells whose inputs (algorithm source, machine, orders, checker
version) have not changed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.algorithms.base import MatmulAlgorithm
from repro.algorithms.registry import algorithm_names, get_algorithm
from repro.check.capacity import (
    capacity_and_peaks,
    check_parameters,
    working_set_peaks,
)
from repro.check.cost import check_cost, count_costs
from repro.check.coverage import check_coverage
from repro.check.events import AnalysisContext
from repro.check.findings import ERROR, Finding
from repro.check.gap import GapCell
from repro.check.presence import check_presence
from repro.check.races import check_races
from repro.check.tightbounds import check_tight_bounds
from repro.exceptions import ReproError
from repro.model.machine import PRESETS, MulticoreMachine

if TYPE_CHECKING:  # imported lazily to keep runner import-light
    from repro.check.incremental import ReportCache
    from repro.check.rules import RuleConfig

#: ``status`` values a :class:`ScheduleReport` can carry.
ANALYZED = "analyzed"
SKIPPED = "skipped"


@dataclass
class ScheduleReport:
    """Outcome of statically analyzing one schedule instance."""

    algorithm: str
    machine: str
    m: int
    n: int
    z: int
    events: int
    computes: int
    peak_shared: int
    peak_dist: List[int]
    findings: List[Finding] = field(default_factory=list)
    status: str = ANALYZED
    skip_reason: str = ""
    elapsed_s: float = 0.0
    cached: bool = False
    #: Optimality-gap data for the gap certificate; ``None`` for skipped
    #: cells and compute-only schedules (no directives, nothing counted).
    gap: Optional[GapCell] = None

    @property
    def errors(self) -> int:
        return sum(1 for f in self.findings if f.severity == ERROR)

    @property
    def ok(self) -> bool:
        return self.errors == 0

    @property
    def skipped(self) -> bool:
        return self.status == SKIPPED

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "machine": self.machine,
            "status": self.status,
            "m": self.m,
            "n": self.n,
            "z": self.z,
            "events": self.events,
            "computes": self.computes,
            "peak_shared": self.peak_shared,
            "peak_dist": list(self.peak_dist),
            "elapsed_s": round(self.elapsed_s, 6),
            "findings": [f.to_dict() for f in self.findings],
        }
        if self.skip_reason:
            out["skip_reason"] = self.skip_reason
        if self.cached:
            out["cached"] = True
        if self.gap is not None:
            out["gap"] = self.gap.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScheduleReport":
        """Rebuild a report from :meth:`to_dict` output (cache replay)."""
        return cls(
            algorithm=str(data["algorithm"]),
            machine=str(data["machine"]),
            m=int(data["m"]),
            n=int(data["n"]),
            z=int(data["z"]),
            events=int(data["events"]),
            computes=int(data["computes"]),
            peak_shared=int(data["peak_shared"]),
            peak_dist=[int(d) for d in data["peak_dist"]],
            findings=[Finding.from_dict(f) for f in data["findings"]],
            status=str(data.get("status", ANALYZED)),
            skip_reason=str(data.get("skip_reason", "")),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            gap=(
                GapCell.from_dict(data["gap"]) if data.get("gap") else None
            ),
        )


def _skipped_report(
    algorithm: str, machine: str, order: int, reason: str
) -> ScheduleReport:
    return ScheduleReport(
        algorithm=algorithm,
        machine=machine,
        m=order,
        n=order,
        z=order,
        events=0,
        computes=0,
        peak_shared=0,
        peak_dist=[],
        status=SKIPPED,
        skip_reason=reason,
    )


def analyze_schedule(
    alg: MatmulAlgorithm,
    *,
    machine_label: str = "",
    limit: int = 25,
) -> ScheduleReport:
    """Record ``alg``'s schedule symbolically and run every analyzer.

    Capacity, presence and cost checking apply only to schedules that
    carry explicit directives (``supports_ideal``); coverage and race
    detection always apply — a compute-only schedule is one concurrent
    epoch, so disjoint ``C`` ownership is still proved.
    """
    started = time.perf_counter()
    machine = alg.machine
    label = machine_label or machine.name or f"p={machine.p},cs={machine.cs},cd={machine.cd}"
    ctx = AnalysisContext(machine.p)
    alg.run(ctx)
    events = ctx.events

    findings: List[Finding] = check_parameters(alg, machine=label)
    common: Dict[str, Any] = dict(algorithm=alg.name, machine=label, limit=limit)
    gap: Optional[GapCell] = None
    if ctx.directives:
        cap_findings, peak_shared, peak_dist = capacity_and_peaks(
            events, machine.cs, machine.cd, machine.p, **common
        )
        findings += cap_findings
        findings += check_presence(events, machine.p, **common)
        counted = count_costs(events, machine.p)
        findings += check_cost(
            alg, events, machine=label, limit=limit, counted=counted
        )
        tight_findings, gap = check_tight_bounds(alg, counted, machine=label)
        findings += tight_findings
    else:
        peak_shared, peak_dist = working_set_peaks(events, machine.p)
    findings += check_coverage(events, alg.m, alg.n, alg.z, **common)
    findings += check_races(events, machine.p, **common)
    return ScheduleReport(
        algorithm=alg.name,
        machine=label,
        m=alg.m,
        n=alg.n,
        z=alg.z,
        events=len(events),
        computes=ctx.comp_total,
        peak_shared=peak_shared,
        peak_dist=peak_dist,
        findings=findings,
        elapsed_s=time.perf_counter() - started,
        gap=gap,
    )


def suggested_orders(
    cls: Type[MatmulAlgorithm], machine: MulticoreMachine
) -> Tuple[int, ...]:
    """Matrix orders that exercise a schedule's tiling on ``machine``.

    Derived from the schedule's natural tile side (λ, ``√p·µ``, α, t):
    a multi-tile evenly-divisible order plus a ragged order for small
    tiles; a single ragged order for large tiles (keeps the biggest
    presets — λ = 30 at q32 — within a fraction of a second).
    """
    probe = cls(machine, 1, 1, 1)
    params = probe.parameters()
    sides = [
        v
        for k, v in params.items()
        if k in ("lambda", "tile", "alpha", "t") and isinstance(v, int)
    ]
    if sides:
        tile = max(sides)
    else:
        # Grid-partitioned schedules (outer-product, cannon): any order
        # works; pick a couple of grid multiples ± a ragged remainder.
        tile = int(params.get("grid", 1)) * 2
    tile = max(tile, 1)
    if tile <= 10:
        return (2 * tile, 2 * tile + 3)
    return (tile + 3,)


def check_all(
    algorithms: Optional[Iterable[str]] = None,
    machines: Optional[Dict[str, MulticoreMachine]] = None,
    *,
    orders: Optional[Sequence[int]] = None,
    limit: int = 25,
    cache: Optional["ReportCache"] = None,
) -> List[ScheduleReport]:
    """Analyze every algorithm × machine cell; returns one report each.

    Cells whose parameters are infeasible on a machine (e.g. a
    non-square core grid for Algorithm 2) come back as ``skipped``
    reports rather than disappearing.  A cell that *raises*
    mid-schedule is reported as a single ``schedule`` error finding
    rather than aborting the sweep.  With ``cache`` set, unchanged
    cells replay their stored reports instead of re-analyzing.
    """
    if algorithms is None:
        algorithms = algorithm_names(include_extras=True)
    if machines is None:
        machines = dict(PRESETS)
    reports: List[ScheduleReport] = []
    for name in algorithms:
        cls = get_algorithm(name)
        for key, machine in machines.items():
            try:
                cell_orders = tuple(orders) if orders else suggested_orders(cls, machine)
            except ReproError as exc:
                reports.append(_skipped_report(name, key, 0, str(exc)))
                continue  # no feasible parameters on this machine
            if cache is not None:
                cell_key = cache.cell_key(cls, machine, key, cell_orders)
                cached = cache.load(cell_key)
                if cached is not None:
                    reports.extend(cached)
                    continue
            cell_reports: List[ScheduleReport] = []
            for order in cell_orders:
                try:
                    alg = cls(machine, order, order, order)
                except ReproError as exc:
                    cell_reports.append(_skipped_report(name, key, order, str(exc)))
                    continue
                try:
                    cell_reports.append(
                        analyze_schedule(alg, machine_label=key, limit=limit)
                    )
                except ReproError as exc:
                    cell_reports.append(
                        ScheduleReport(
                            algorithm=name,
                            machine=key,
                            m=order,
                            n=order,
                            z=order,
                            events=0,
                            computes=0,
                            peak_shared=0,
                            peak_dist=[],
                            findings=[
                                Finding(
                                    "schedule",
                                    ERROR,
                                    f"schedule raised while recording: {exc}",
                                    algorithm=name,
                                    machine=key,
                                    rule="schedule/raised",
                                )
                            ],
                        )
                    )
            if cache is not None:
                cache.store(cell_key, cell_reports)
            reports.extend(cell_reports)
    return reports


def source_scan(
    *,
    config: Optional["RuleConfig"] = None,
    jobs: Optional[int] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """The full static source pass, as the CLI and CI run it.

    Returns ``(scan, engine)``: the per-file scan (syntactic lint,
    determinism and purity dataflow rules, suppression hygiene) over
    the package, ``benchmarks/`` and ``tests/``, and the
    engine-conformance findings (configuration-matrix walk plus
    call-site scan), both filtered through ``config``.
    """
    from repro.check.enginemodel import check_engine_model
    from repro.check.lint import run_lint
    from repro.check.rules import DEFAULT_CONFIG, RuleConfig, filter_findings

    cfg = config if config is not None else DEFAULT_CONFIG
    scan = run_lint(config=cfg, jobs=jobs)
    engine = filter_findings(check_engine_model(), cfg)
    return scan, engine
