"""Race detection: happens-before over the per-core event streams.

The recorded log is one global sequence, but only *per-core* order is
real: the schedule's emission order interleaves ``p`` streams that
execute concurrently on hardware.  The synchronization structure is the
one the paper's pseudocode implies — shared-cache directives
(``load_shared`` / ``evict_shared``) are issued by the orchestrating
master between parallel sections, so they are fork/join barriers:

* events of the same core are ordered by program order;
* every shared-level directive happens-after all earlier events and
  happens-before all later ones (a global barrier);
* distributed-level events of *different* cores between two consecutive
  barriers are concurrent.

Within one barrier-delimited epoch the detector classifies accesses to
each logical block:

* ``compute`` reads its ``A`` and ``B`` operands and *writes* its ``C``
  operand (marking the core's copy dirty);
* ``load_dist`` reads the block (copies it from the shared level);
* ``evict_dist`` of a dirty block *writes* it (the write-back races
  with any concurrent access to the same block);  clean evictions touch
  no data.

Two concurrent accesses to the same block by different cores where at
least one is a write — write/write or read/write — are flagged.  The
2-D cyclic ownership of ``C`` that `distributed-opt`, `tradeoff`,
`cannon` and `outer-product` rely on makes their schedules race-free;
a schedule that assigns one ``C`` block to two cores in the same epoch
is caught immediately.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.cache.block import key_name
from repro.check.events import COMPUTE, EVICT_D, EVICT_S, LOAD_D, LOAD_S, Event
from repro.check.findings import ERROR, Finding, FindingLimiter

#: Per-key access record within one epoch: (epoch, reader cores as a
#: bitmask, writer cores as a bitmask).  Bitmasks make the hot-path
#: conflict test one ``&`` and one compare; the detector runs over
#: every event of every cell, so this loop is fully inlined below —
#: a ``record()`` helper costs a function call per data access, which
#: profiled as the single largest line item of ``check_all``.
_Record = Tuple[int, int, int]


def check_races(
    events: Sequence[Event],
    p: int,
    *,
    algorithm: str = "",
    machine: str = "",
    limit: int = 25,
) -> List[Finding]:
    """Flag unsynchronized conflicting accesses between cores."""
    out = FindingLimiter("race", limit)
    epoch = 0
    access: Dict[int, _Record] = {}
    dirty: List[Set[int]] = [set() for _ in range(p)]
    # Report each conflicting (key, core pair, kind) once, not per event.
    reported: Set[Tuple[int, int, int, str]] = set()

    def report_writer_conflict(
        key: int, core: int, foreign_writers: int, write: bool, index: int
    ) -> None:
        """A foreign core already wrote ``key`` this epoch (rare path)."""
        other = (foreign_writers & -foreign_writers).bit_length() - 1
        kind = "write/write" if write else "read/write"
        tag = (key, min(core, other), max(core, other), kind)
        if tag not in reported:
            reported.add(tag)
            out.add(
                Finding(
                    "race",
                    ERROR,
                    f"{kind} race on {key_name(key)}: cores {other} and "
                    f"{core} access it in the same epoch with no "
                    "intervening synchronization",
                    algorithm=algorithm,
                    machine=machine,
                    event=index,
                    rule=(
                        "race/write-write" if write else "race/read-write"
                    ),
                )
            )

    def report_reader_conflict(
        key: int, core: int, foreign_readers: int, index: int
    ) -> None:
        """``core`` writes ``key`` a foreign core read this epoch."""
        other = (foreign_readers & -foreign_readers).bit_length() - 1
        tag = (key, min(core, other), max(core, other), "read/write")
        if tag not in reported:
            reported.add(tag)
            out.add(
                Finding(
                    "race",
                    ERROR,
                    f"read/write race on {key_name(key)}: core {other} "
                    f"reads while core {core} writes in the same epoch "
                    "with no intervening synchronization",
                    algorithm=algorithm,
                    machine=machine,
                    event=index,
                    rule="race/read-write",
                )
            )

    for index, ev in enumerate(events):
        op = ev[0]
        if op == COMPUTE:
            core = ev[1]
            ckey, akey, bkey = ev[2], ev[3], ev[4]
            bit = 1 << core
            not_bit = ~bit
            for key in (akey, bkey):  # operand reads
                rec = access.get(key)
                if rec is None or rec[0] != epoch:
                    access[key] = (epoch, bit, 0)
                else:
                    wmask = rec[2]
                    if wmask & not_bit:
                        report_writer_conflict(
                            key, core, wmask & not_bit, False, index
                        )
                    access[key] = (epoch, rec[1] | bit, wmask)
            rec = access.get(ckey)  # accumulator write
            if rec is None or rec[0] != epoch:
                access[ckey] = (epoch, 0, bit)
            else:
                rmask, wmask = rec[1], rec[2]
                if wmask & not_bit:
                    report_writer_conflict(
                        ckey, core, wmask & not_bit, True, index
                    )
                elif rmask & not_bit:
                    report_reader_conflict(ckey, core, rmask & not_bit, index)
                access[ckey] = (epoch, rmask, wmask | bit)
            dirty[core].add(ckey)
        elif op == LOAD_D:
            core, key = ev[1], ev[2]
            bit = 1 << core
            rec = access.get(key)
            if rec is None or rec[0] != epoch:
                access[key] = (epoch, bit, 0)
            else:
                wmask = rec[2]
                if wmask & ~bit:
                    report_writer_conflict(key, core, wmask & ~bit, False, index)
                access[key] = (epoch, rec[1] | bit, wmask)
        elif op == EVICT_D:
            core, key = ev[1], ev[2]
            if key in dirty[core]:
                # The write-back of a dirty block is a data write.
                dirty[core].discard(key)
                bit = 1 << core
                rec = access.get(key)
                if rec is None or rec[0] != epoch:
                    access[key] = (epoch, 0, bit)
                else:
                    rmask, wmask = rec[1], rec[2]
                    if wmask & ~bit:
                        report_writer_conflict(
                            key, core, wmask & ~bit, True, index
                        )
                    elif rmask & ~bit:
                        report_reader_conflict(key, core, rmask & ~bit, index)
                    access[key] = (epoch, rmask, wmask | bit)
        elif op == LOAD_S or op == EVICT_S:
            # Master-issued barrier: later events happen-after everything.
            epoch += 1
    return out.results()
