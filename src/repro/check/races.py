"""Race detection: happens-before over the per-core event streams.

The recorded log is one global sequence, but only *per-core* order is
real: the schedule's emission order interleaves ``p`` streams that
execute concurrently on hardware.  The synchronization structure is the
one the paper's pseudocode implies — shared-cache directives
(``load_shared`` / ``evict_shared``) are issued by the orchestrating
master between parallel sections, so they are fork/join barriers:

* events of the same core are ordered by program order;
* every shared-level directive happens-after all earlier events and
  happens-before all later ones (a global barrier);
* distributed-level events of *different* cores between two consecutive
  barriers are concurrent.

Within one barrier-delimited epoch the detector classifies accesses to
each logical block:

* ``compute`` reads its ``A`` and ``B`` operands and *writes* its ``C``
  operand (marking the core's copy dirty);
* ``load_dist`` reads the block (copies it from the shared level);
* ``evict_dist`` of a dirty block *writes* it (the write-back races
  with any concurrent access to the same block);  clean evictions touch
  no data.

Two concurrent accesses to the same block by different cores where at
least one is a write — write/write or read/write — are flagged.  The
2-D cyclic ownership of ``C`` that `distributed-opt`, `tradeoff`,
`cannon` and `outer-product` rely on makes their schedules race-free;
a schedule that assigns one ``C`` block to two cores in the same epoch
is caught immediately.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.cache.block import key_name
from repro.check.events import COMPUTE, EVICT_D, EVICT_S, LOAD_D, LOAD_S, Event
from repro.check.findings import ERROR, Finding, FindingLimiter

#: Per-key access record within one epoch: (epoch, readers, writers).
_Record = Tuple[int, Set[int], Set[int]]


def check_races(
    events: Sequence[Event],
    p: int,
    *,
    algorithm: str = "",
    machine: str = "",
    limit: int = 25,
) -> List[Finding]:
    """Flag unsynchronized conflicting accesses between cores."""
    out = FindingLimiter("race", limit)
    epoch = 0
    access: Dict[int, _Record] = {}
    dirty: List[Set[int]] = [set() for _ in range(p)]
    # Report each conflicting (key, core pair, kind) once, not per event.
    reported: Set[Tuple[int, int, int, str]] = set()

    def record(core: int, key: int, write: bool, index: int) -> None:
        rec = access.get(key)
        if rec is None or rec[0] != epoch:
            rec = (epoch, set(), set())
            access[key] = rec
        _, readers, writers = rec
        others_w = writers - {core}
        if others_w:
            kind = "write/write" if write else "read/write"
            other = min(others_w)
            tag = (key, min(core, other), max(core, other), kind)
            if tag not in reported:
                reported.add(tag)
                out.add(
                    Finding(
                        "race",
                        ERROR,
                        f"{kind} race on {key_name(key)}: cores {other} and "
                        f"{core} access it in the same epoch with no "
                        "intervening synchronization",
                        algorithm=algorithm,
                        machine=machine,
                        event=index,
                        rule=(
                            "race/write-write" if write else "race/read-write"
                        ),
                    )
                )
        elif write:
            others_r = readers - {core}
            if others_r:
                other = min(others_r)
                tag = (key, min(core, other), max(core, other), "read/write")
                if tag not in reported:
                    reported.add(tag)
                    out.add(
                        Finding(
                            "race",
                            ERROR,
                            f"read/write race on {key_name(key)}: core {other} "
                            f"reads while core {core} writes in the same epoch "
                            "with no intervening synchronization",
                            algorithm=algorithm,
                            machine=machine,
                            event=index,
                            rule="race/read-write",
                        )
                    )
        (writers if write else readers).add(core)

    for index, ev in enumerate(events):
        op = ev[0]
        if op == LOAD_S or op == EVICT_S:
            # Master-issued barrier: later events happen-after everything.
            epoch += 1
        elif op == LOAD_D:
            record(ev[1], ev[2], False, index)
        elif op == EVICT_D:
            core, key = ev[1], ev[2]
            if key in dirty[core]:
                dirty[core].discard(key)
                record(core, key, True, index)
        elif op == COMPUTE:
            core = ev[1]
            ckey, akey, bkey = ev[2], ev[3], ev[4]
            record(core, akey, False, index)
            record(core, bkey, False, index)
            record(core, ckey, True, index)
            dirty[core].add(ckey)
    return out.results()
