"""Cost conformance: counted ``MS``/``MD`` vs closed forms and lower bounds.

The paper's central quantitative claims are the miss-count formulas of
§3 (``MS = mn + 2mnz/λ`` and friends, implemented in
:mod:`repro.analysis.formulas`) and the §2.3 Loomis–Whitney lower
bounds (:mod:`repro.model.bounds`).  This analyzer proves both against
the *recorded* schedule, with no cache simulation:

* :func:`count_costs` walks the event log with exact resident sets and
  counts distinct-block load traffic — a shared load of a non-resident
  block is one ``MS``, a distributed load of a block absent from that
  core's cache is one ``MD`` for the core.  This is, by construction,
  integer-for-integer the count
  :class:`~repro.cache.hierarchy.IdealHierarchy` would produce for the
  same directive stream (redundant loads move no data in either).

* :func:`check_cost` then cross-checks three ways:

  1. **Closed forms** — when
     :func:`~repro.analysis.formulas.divisibility_ok` holds, the
     counted ``MS`` and max per-core ``MD`` must equal the registered
     formula *exactly* (``cost/formula-mismatch``).  On ragged tiles
     the formulas are only asymptotic; the counts must stay within a
     bounded ratio (``cost/formula-ratio``).
  2. **Lower bounds** — no recorded count may beat
     ``MS ≥ mnz·√(27/(8·CS))`` or ``MD ≥ (mnz/p)·√(27/(8·CD))``
     (``cost/below-lower-bound``).  A schedule below the bound means
     the counting model — not the schedule — is broken: hard error.
  3. **Tdata** — pricing the counted misses through
     :func:`repro.analysis.report.tdata_from_counts` must agree with
     the formula-side prediction (``cost/tdata-mismatch``), proving the
     reporting pipeline prices both the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.algorithms.base import MatmulAlgorithm
from repro.analysis.formulas import FORMULAS, divisibility_ok, predict
from repro.analysis.report import tdata_from_counts
from repro.check.events import EVICT_D, EVICT_S, LOAD_D, LOAD_S, Event
from repro.check.findings import ERROR, Finding
from repro.model.bounds import (
    distributed_misses_lower_bound,
    shared_misses_lower_bound,
)
from repro.model.machine import MulticoreMachine

#: Ragged-tile tolerance (multiplier, slack): the closed forms must
#: bracket the counted values within ``factor·x + slack`` both ways.
#: Mirrors the envelope the simulator-vs-formula tests have always
#: asserted; the slack term absorbs orders smaller than one tile.
MS_RATIO_BOUND: Tuple[float, float] = (2.5, 100.0)
MD_RATIO_BOUND: Tuple[float, float] = (4.0, 200.0)

#: Relative tolerance for float comparisons that should be exact.
EXACT_REL_TOL = 1e-9


@dataclass(frozen=True)
class CountedCosts:
    """Distinct-block load traffic derived from one recorded schedule."""

    ms: int
    md: Tuple[int, ...]

    @property
    def md_max(self) -> int:
        """Max per-core distributed misses — the paper's ``MD``."""
        return max(self.md) if self.md else 0

    def tdata(self, machine: MulticoreMachine) -> float:
        """Data access time of the counted misses on ``machine``."""
        return tdata_from_counts(self.ms, self.md_max, machine)


def count_costs(events: Sequence[Event], p: int) -> CountedCosts:
    """Count ``MS`` and per-core ``MD`` exactly from the event log.

    A load only counts when the block is not already resident at that
    level (a redundant load moves no data); evictions free residency.
    Matches :class:`~repro.cache.hierarchy.IdealHierarchy` counting
    integer for integer.
    """
    shared: Set[int] = set()
    dist: List[Set[int]] = [set() for _ in range(p)]
    ms = 0
    md = [0] * p
    for ev in events:
        op = ev[0]
        if op == LOAD_S:
            key = ev[2]
            if key not in shared:
                shared.add(key)
                ms += 1
        elif op == EVICT_S:
            shared.discard(ev[2])
        elif op == LOAD_D:
            core, key = ev[1], ev[2]
            dset = dist[core]
            if key not in dset:
                dset.add(key)
                md[core] += 1
        elif op == EVICT_D:
            dist[ev[1]].discard(ev[2])
    return CountedCosts(ms=ms, md=tuple(md))


def envelope_ratio(counted: float, predicted: float) -> float:
    """Symmetric counted/predicted ratio: ``max(c/p, p/c)`` (≥ 1).

    ``inf`` when exactly one side is zero; 1 when both are.
    """
    lo, hi = sorted((counted, predicted))
    if lo <= 0.0:
        return 1.0 if hi <= 0.0 else math.inf
    return hi / lo


def envelope_used(
    counted: float, predicted: float, bound: Tuple[float, float]
) -> float:
    """Fraction of the ragged-tile envelope a cell consumes.

    The envelope is the symmetric ``x ≤ factor·y + slack`` band; the
    worst direction's ``x / (factor·y + slack)`` is the usage — ≤ 1
    inside the envelope, > 1 outside.  The gap report records this per
    ragged cell so "how close to the envelope edge" is visible without
    re-deriving it from the raw counts.
    """
    factor, slack = bound
    out = 0.0
    for x, y in ((counted, predicted), (predicted, counted)):
        allowed = factor * y + slack
        out = max(out, x / allowed if allowed > 0.0 else math.inf)
    return out


def _within_envelope(
    counted: float, predicted: float, bound: Tuple[float, float]
) -> bool:
    """Symmetric bounded-ratio check ``x ≤ factor·y + slack`` both ways."""
    return envelope_used(counted, predicted, bound) <= 1.0


@dataclass(frozen=True)
class FormulaEnvelope:
    """How one cell's counted misses sit against its closed forms.

    ``ms_ratio``/``md_ratio`` are the symmetric counted-vs-predicted
    ratios; ``ms_used``/``md_used`` the fraction of the ragged-tile
    envelope consumed (both 1.0-bounded on conforming cells).  On
    divisible orders the ratios are exactly 1 by ``cost/formula-mismatch``.
    """

    predicted_ms: float
    predicted_md: float
    ms_ratio: float
    md_ratio: float
    ms_used: float
    md_used: float
    divisible: bool


def formula_envelope(
    alg: MatmulAlgorithm, counted: CountedCosts
) -> Optional[FormulaEnvelope]:
    """Envelope-slack summary for one cell; ``None`` without a formula."""
    if alg.name not in FORMULAS:
        return None
    predicted = predict(alg)
    return FormulaEnvelope(
        predicted_ms=predicted.ms,
        predicted_md=predicted.md,
        ms_ratio=envelope_ratio(counted.ms, predicted.ms),
        md_ratio=envelope_ratio(counted.md_max, predicted.md),
        ms_used=envelope_used(counted.ms, predicted.ms, MS_RATIO_BOUND),
        md_used=envelope_used(counted.md_max, predicted.md, MD_RATIO_BOUND),
        divisible=divisibility_ok(alg),
    )


def check_cost(
    alg: MatmulAlgorithm,
    events: Sequence[Event],
    *,
    machine: str = "",
    limit: int = 25,
    counted: Optional[CountedCosts] = None,
) -> List[Finding]:
    """Prove the recorded traffic conforms to formulas and lower bounds.

    ``limit`` is accepted for interface symmetry with the other
    analyzers; this pass emits at most a handful of findings per cell.
    ``counted`` lets the runner share one :func:`count_costs` walk with
    the tight-bound analyzer instead of re-walking the event log.
    """
    del limit  # never floods: at most six findings per schedule
    platform = alg.machine
    if counted is None:
        counted = count_costs(events, platform.p)
    findings: List[Finding] = []

    def fail(rule: str, message: str) -> None:
        findings.append(
            Finding(
                "cost",
                ERROR,
                message,
                algorithm=alg.name,
                machine=machine,
                rule=rule,
            )
        )

    m, n, z = alg.m, alg.n, alg.z

    # (2) Loomis–Whitney lower bounds: beating one is a model bug.
    ms_bound = shared_misses_lower_bound(platform, m, n, z)
    if counted.ms < ms_bound * (1.0 - EXACT_REL_TOL):
        fail(
            "cost/below-lower-bound",
            f"counted MS={counted.ms} beats the Loomis-Whitney lower bound "
            f"{ms_bound:.1f} = mnz*sqrt(27/(8*CS)); the counting model is "
            "unsound for this schedule",
        )
    md_bound = distributed_misses_lower_bound(platform, m, n, z)
    if counted.md_max < md_bound * (1.0 - EXACT_REL_TOL):
        fail(
            "cost/below-lower-bound",
            f"counted MD={counted.md_max} beats the Loomis-Whitney lower "
            f"bound {md_bound:.1f} = (mnz/p)*sqrt(27/(8*CD)); the counting "
            "model is unsound for this schedule",
        )

    if alg.name not in FORMULAS:
        return findings

    # (1) Closed forms: exact when divisibility holds, bracketed otherwise.
    predicted = predict(alg)
    if divisibility_ok(alg):
        if not math.isclose(counted.ms, predicted.ms, rel_tol=EXACT_REL_TOL):
            fail(
                "cost/formula-mismatch",
                f"counted MS={counted.ms} != predicted MS={predicted.ms:.1f} "
                "although the divisibility conditions for exactness hold",
            )
        if not math.isclose(counted.md_max, predicted.md, rel_tol=EXACT_REL_TOL):
            fail(
                "cost/formula-mismatch",
                f"counted MD={counted.md_max} != predicted MD="
                f"{predicted.md:.1f} although the divisibility conditions "
                "for exactness hold",
            )
        # (3) Tdata: counted misses priced through the report pipeline
        # must match the formula-side prediction.
        t_counted = counted.tdata(platform)
        t_pred = predicted.tdata(platform)
        if not math.isclose(t_counted, t_pred, rel_tol=1e-6):
            fail(
                "cost/tdata-mismatch",
                f"Tdata from counted misses ({t_counted:.3f}) disagrees with "
                f"the predicted Tdata ({t_pred:.3f}) on divisible orders",
            )
    else:
        if not _within_envelope(counted.ms, predicted.ms, MS_RATIO_BOUND):
            factor, slack = MS_RATIO_BOUND
            fail(
                "cost/formula-ratio",
                f"counted MS={counted.ms} and predicted MS={predicted.ms:.1f} "
                f"diverge beyond the ragged-tile envelope "
                f"({factor}x + {slack:.0f}): ratio "
                f"{envelope_ratio(counted.ms, predicted.ms):.2f}, envelope "
                f"{envelope_used(counted.ms, predicted.ms, MS_RATIO_BOUND):.2f}x "
                "used",
            )
        if not _within_envelope(counted.md_max, predicted.md, MD_RATIO_BOUND):
            factor, slack = MD_RATIO_BOUND
            fail(
                "cost/formula-ratio",
                f"counted MD={counted.md_max} and predicted MD="
                f"{predicted.md:.1f} diverge beyond the ragged-tile envelope "
                f"({factor}x + {slack:.0f}): ratio "
                f"{envelope_ratio(counted.md_max, predicted.md):.2f}, envelope "
                f"{envelope_used(counted.md_max, predicted.md, MD_RATIO_BOUND):.2f}x "
                "used",
            )
    return findings
