"""Symbolic event log of a schedule and the context that records it.

:class:`AnalysisContext` is the cheapest possible interpreter of a
schedule: it advertises ``explicit = True`` so algorithms emit their
full directive stream, and appends every operation to a flat list of
tuples instead of simulating anything.  The analyzers in this package
(:mod:`~repro.check.capacity`, :mod:`~repro.check.presence`,
:mod:`~repro.check.coverage`, :mod:`~repro.check.races`) then prove
their invariants by walking that log — milliseconds, versus the
multi-second cache simulation or numeric execution the same bugs would
otherwise need to surface.

Event encoding (position in the list is the event's global sequence
number):

* ``(LOAD_S,  -1,   key)`` — memory → shared-cache load;
* ``(EVICT_S, -1,   key)`` — shared-cache eviction;
* ``(LOAD_D,  core, key)`` — shared → distributed load by ``core``;
* ``(EVICT_D, core, key)`` — distributed eviction by ``core``;
* ``(COMPUTE, core, ckey, akey, bkey)`` — one block multiply-add.

Shared-level directives carry core ``-1``: in the paper's model they
are issued by the orchestrating master, not by a worker core, which is
exactly what makes them synchronization points for the race detector.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.algorithms.base import ExecutionContext

#: Event opcodes (first element of every event tuple).
LOAD_S = 0
EVICT_S = 1
LOAD_D = 2
EVICT_D = 3
COMPUTE = 4

#: Pretty opcode names for findings and debugging.
EVENT_NAMES = ("load_shared", "evict_shared", "load_dist", "evict_dist", "compute")

#: One recorded operation; length 3 for directives, 5 for computes.
Event = Tuple[int, ...]


class AnalysisContext(ExecutionContext):
    """Record a schedule's directive/compute stream for static analysis.

    Unlike :class:`~repro.sim.contexts.RecordingContext` (which records
    the *reference* stream for LRU replay and drops the directives),
    this context keeps the explicit directives — they are the object of
    study here.
    """

    explicit = True

    def __init__(self, p: int) -> None:
        super().__init__(p)
        self.events: List[Event] = []
        #: Number of explicit directives recorded (0 ⇒ compute-only
        #: schedule; capacity/presence analysis is meaningless then).
        self.directives = 0

    def load_shared(self, key: int) -> None:
        self.directives += 1
        self.events.append((LOAD_S, -1, key))

    def evict_shared(self, key: int) -> None:
        self.directives += 1
        self.events.append((EVICT_S, -1, key))

    def load_dist(self, core: int, key: int) -> None:
        self.directives += 1
        self.events.append((LOAD_D, core, key))

    def evict_dist(self, core: int, key: int) -> None:
        self.directives += 1
        self.events.append((EVICT_D, core, key))

    def compute(self, core: int, ckey: int, akey: int, bkey: int) -> None:
        self.events.append((COMPUTE, core, ckey, akey, bkey))
        self.comp[core] += 1
