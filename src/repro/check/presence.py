"""Presence checking: loads cover computes, no dead traffic, inclusivity.

A static proof of the "user responsibility" clause of the paper's IDEAL
mode: *"it is the user responsibility to guarantee that a given data is
present in every cache below the target cache"*.  Walking the recorded
log with exact resident sets, the checker flags (as errors):

* a compute whose operand is absent from the issuing core's cache;
* a distributed load of a block absent from the shared cache, or a
  shared eviction while some core still holds the block (inclusivity);
* evicting a block that is not resident (double/spurious eviction);

and (as warnings, they cost bandwidth but not correctness):

* redundant loads — the block is already resident at that level;
* dead loads — loaded, then evicted (or left behind at end of
  schedule) without a single use: a shared-level load is used by a
  distributed load or a dirty write-back of the same block; a
  distributed-level load is used by a compute on that core;
* blocks still resident when the schedule ends (leaked pins).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.cache.block import key_name
from repro.check.events import COMPUTE, EVICT_D, EVICT_S, LOAD_D, LOAD_S, Event
from repro.check.findings import ERROR, WARNING, Finding, FindingLimiter


def check_presence(
    events: Sequence[Event],
    p: int,
    *,
    algorithm: str = "",
    machine: str = "",
    limit: int = 25,
) -> List[Finding]:
    """Prove the load schedule covers the compute schedule exactly."""
    out = FindingLimiter("presence", limit)

    def add(severity: str, message: str, index: int, rule: str) -> None:
        out.add(
            Finding(
                "presence",
                severity,
                message,
                algorithm=algorithm,
                machine=machine,
                event=index,
                rule=rule,
            )
        )

    # Resident maps: key -> True once the copy has been used.
    shared: Dict[int, bool] = {}
    dist: List[Dict[int, bool]] = [{} for _ in range(p)]
    dirty: List[Set[int]] = [set() for _ in range(p)]
    # How many cores hold each key, so the per-eviction inclusivity
    # test is O(1); the O(p) scan only runs to *report* a violation.
    held: Dict[int, int] = {}

    for index, ev in enumerate(events):
        op = ev[0]
        if op == LOAD_S:
            key = ev[2]
            if key in shared:
                add(
                    WARNING,
                    f"redundant shared load of {key_name(key)}",
                    index,
                    "presence/redundant-load",
                )
            else:
                shared[key] = False
        elif op == LOAD_D:
            core, key = ev[1], ev[2]
            if key not in shared:
                add(
                    ERROR,
                    f"core {core} loads {key_name(key)} absent from the shared cache",
                    index,
                    "presence/load-absent",
                )
            else:
                shared[key] = True
            if key in dist[core]:
                add(
                    WARNING,
                    f"redundant distributed load of {key_name(key)} on core {core}",
                    index,
                    "presence/redundant-load",
                )
            else:
                dist[core][key] = False
                held[key] = held.get(key, 0) + 1
        elif op == EVICT_S:
            key = ev[2]
            if held.get(key):
                holders = [c for c in range(p) if key in dist[c]]
                add(
                    ERROR,
                    f"evicting {key_name(key)} from the shared cache while "
                    f"core(s) {holders} still hold it",
                    index,
                    "presence/inclusion",
                )
            used = shared.pop(key, None)
            if used is None:
                add(
                    ERROR,
                    f"spurious shared eviction of {key_name(key)} (not resident)",
                    index,
                    "presence/spurious-evict",
                )
            elif not used:
                add(
                    WARNING,
                    f"dead shared load of {key_name(key)}",
                    index,
                    "presence/dead-load",
                )
        elif op == EVICT_D:
            core, key = ev[1], ev[2]
            used = dist[core].pop(key, None)
            if used is not None:
                held[key] -= 1
            if used is None:
                add(
                    ERROR,
                    f"spurious distributed eviction of {key_name(key)} "
                    f"on core {core} (not resident)",
                    index,
                    "presence/spurious-evict",
                )
            elif not used:
                add(
                    WARNING,
                    f"dead distributed load of {key_name(key)} on core {core}",
                    index,
                    "presence/dead-load",
                )
            if key in dirty[core]:
                # Write-back into the shared copy counts as a use of it.
                dirty[core].discard(key)
                if key in shared:
                    shared[key] = True
        elif op == COMPUTE:
            core = ev[1]
            ckey, akey, bkey = ev[2], ev[3], ev[4]
            dset = dist[core]
            for key in (akey, bkey, ckey):
                if key in dset:
                    dset[key] = True
                else:
                    add(
                        ERROR,
                        f"compute on core {core} touches {key_name(key)} which "
                        "is not resident in its distributed cache",
                        index,
                        "presence/absent-operand",
                    )
            dirty[core].add(ckey)

    end = len(events)
    for core in range(p):
        for key in dist[core]:
            add(
                WARNING,
                f"{key_name(key)} still resident in core {core}'s cache "
                "when the schedule ends",
                end,
                "presence/leaked-resident",
            )
    for key in shared:
        add(
            WARNING,
            f"{key_name(key)} still resident in the shared cache "
            "when the schedule ends",
            end,
            "presence/leaked-resident",
        )
    return out.results()
