"""Optimality-gap certificates: counted misses over the tight bounds.

The cost analyzer proves counted ``MS``/``MD`` never *beat* the lower
bounds; this module certifies how close each algorithm gets.  For every
analyzed (algorithm × machine × order) cell the tight-bound analyzer
(:mod:`repro.check.tightbounds`) records a :class:`GapCell` — the
counted misses, every lower bound at each level, and the measured
gap ``counted / best bound`` per level.  :func:`build_gap_report`
aggregates the cells into a schema-versioned :class:`GapReport`:

* per-algorithm summaries (min/median/max gap per level over the
  sweep's cells), and
* a *certification* per level: an algorithm is certified near-optimal
  at the shared (distributed) level when its best shared (distributed)
  gap is at most :data:`SHARED_CERTIFY_GAP` (:data:`DISTRIBUTED_CERTIFY_GAP`).

The report is written through :mod:`repro.store.atomic` as
``gap-report.json`` and ratcheted against a committed
``check-gap-baseline.json``: :func:`compare_gap_reports` emits

* ``gap/regression`` when a certified level's best gap worsens beyond
  tolerance, and
* ``gap/uncertified-algorithm`` when an algorithm the baseline
  certifies loses its certificate (or vanishes from the report).

Schedules are deterministic, so gaps are bit-stable run to run; the
comparison tolerance only absorbs bound-formula refinements.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.check.findings import CHECKER_VERSION, ERROR, Finding
from repro.store.atomic import atomic_write_text

#: Gap-report JSON schema; bump on incompatible layout changes.
GAP_SCHEMA = 1

#: Best-gap thresholds under which an algorithm is certified
#: near-optimal at a level.  Calibrated against the paper's optimized
#: schedules (Shared/Distributed Opt. and Tradeoff sit at 1.1–1.8 on
#: their target level; the baselines sit at 5–40).
SHARED_CERTIFY_GAP = 2.0
DISTRIBUTED_CERTIFY_GAP = 2.0

#: Relative worsening of a certified best gap tolerated before
#: ``gap/regression`` fires.  Gaps are deterministic; the tolerance
#: absorbs only deliberate bound refinements, not measurement noise.
GAP_REL_TOL = 0.01


@dataclass(frozen=True)
class GapCell:
    """One cell's counted misses against every lower bound.

    ``ms_bounds``/``md_bounds`` map bound names
    (``loomis-whitney``/``tight``/``compulsory`` resp.
    ``loomis-whitney``/``tight``/``memory-independent``) to values;
    ``ms_binding``/``md_binding`` name the strongest.  ``ms_envelope``
    carries the ragged-order formula-envelope slack
    (:class:`repro.check.cost.FormulaEnvelope` fields) when the
    algorithm has a registered closed form.
    """

    algorithm: str
    machine: str
    m: int
    n: int
    z: int
    ms: int
    md: int
    ms_bounds: Dict[str, float]
    md_bounds: Dict[str, float]
    ms_binding: str
    md_binding: str
    divisible: bool
    envelope: Optional[Dict[str, float]] = None

    @property
    def ms_gap(self) -> float:
        """Counted ``MS`` over the best shared-level bound (≥ 1)."""
        best = max(self.ms_bounds.values())
        return self.ms / best if best > 0 else float("inf")

    @property
    def md_gap(self) -> float:
        """Counted ``MD`` over the best distributed-level bound (≥ 1)."""
        best = max(self.md_bounds.values())
        return self.md / best if best > 0 else float("inf")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "algorithm": self.algorithm,
            "machine": self.machine,
            "m": self.m,
            "n": self.n,
            "z": self.z,
            "ms": self.ms,
            "md": self.md,
            "ms_bounds": {k: round(v, 6) for k, v in self.ms_bounds.items()},
            "md_bounds": {k: round(v, 6) for k, v in self.md_bounds.items()},
            "ms_binding": self.ms_binding,
            "md_binding": self.md_binding,
            "ms_gap": round(self.ms_gap, 6),
            "md_gap": round(self.md_gap, 6),
            "divisible": self.divisible,
        }
        if self.envelope is not None:
            out["envelope"] = {k: round(v, 6) for k, v in self.envelope.items()}
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GapCell":
        envelope = data.get("envelope")
        return cls(
            algorithm=str(data["algorithm"]),
            machine=str(data["machine"]),
            m=int(data["m"]),
            n=int(data["n"]),
            z=int(data["z"]),
            ms=int(data["ms"]),
            md=int(data["md"]),
            ms_bounds={str(k): float(v) for k, v in data["ms_bounds"].items()},
            md_bounds={str(k): float(v) for k, v in data["md_bounds"].items()},
            ms_binding=str(data["ms_binding"]),
            md_binding=str(data["md_binding"]),
            divisible=bool(data["divisible"]),
            envelope=(
                {str(k): float(v) for k, v in envelope.items()}
                if envelope is not None
                else None
            ),
        )


@dataclass(frozen=True)
class AlgorithmGap:
    """Per-algorithm aggregate over one report's cells."""

    algorithm: str
    cells: int
    ms_gap_min: float
    ms_gap_median: float
    ms_gap_max: float
    md_gap_min: float
    md_gap_median: float
    md_gap_max: float

    @property
    def certified_shared(self) -> bool:
        """Near-optimal at the shared level (best gap ≤ threshold)."""
        return self.ms_gap_min <= SHARED_CERTIFY_GAP

    @property
    def certified_distributed(self) -> bool:
        """Near-optimal at the distributed level (best gap ≤ threshold)."""
        return self.md_gap_min <= DISTRIBUTED_CERTIFY_GAP

    def to_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "cells": self.cells,
            "ms_gap": {
                "min": round(self.ms_gap_min, 6),
                "median": round(self.ms_gap_median, 6),
                "max": round(self.ms_gap_max, 6),
            },
            "md_gap": {
                "min": round(self.md_gap_min, 6),
                "median": round(self.md_gap_median, 6),
                "max": round(self.md_gap_max, 6),
            },
            "certified_shared": self.certified_shared,
            "certified_distributed": self.certified_distributed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AlgorithmGap":
        return cls(
            algorithm=str(data["algorithm"]),
            cells=int(data["cells"]),
            ms_gap_min=float(data["ms_gap"]["min"]),
            ms_gap_median=float(data["ms_gap"]["median"]),
            ms_gap_max=float(data["ms_gap"]["max"]),
            md_gap_min=float(data["md_gap"]["min"]),
            md_gap_median=float(data["md_gap"]["median"]),
            md_gap_max=float(data["md_gap"]["max"]),
        )


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class GapReport:
    """A sweep's gap certificate: cells plus per-algorithm aggregates."""

    cells: List[GapCell]

    def algorithms(self) -> List[AlgorithmGap]:
        grouped: Dict[str, List[GapCell]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.algorithm, []).append(cell)
        out: List[AlgorithmGap] = []
        for name in sorted(grouped):
            cells = grouped[name]
            ms_gaps = [c.ms_gap for c in cells]
            md_gaps = [c.md_gap for c in cells]
            out.append(
                AlgorithmGap(
                    algorithm=name,
                    cells=len(cells),
                    ms_gap_min=min(ms_gaps),
                    ms_gap_median=_median(ms_gaps),
                    ms_gap_max=max(ms_gaps),
                    md_gap_min=min(md_gaps),
                    md_gap_median=_median(md_gaps),
                    md_gap_max=max(md_gaps),
                )
            )
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": GAP_SCHEMA,
            "checker_version": CHECKER_VERSION,
            "thresholds": {
                "shared": SHARED_CERTIFY_GAP,
                "distributed": DISTRIBUTED_CERTIFY_GAP,
            },
            "algorithms": [a.to_dict() for a in self.algorithms()],
            "cells": [c.to_dict() for c in self.cells],
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Atomically write the certificate as indented JSON."""
        return atomic_write_text(path, json.dumps(self.to_dict(), indent=2) + "\n")


def build_gap_report(cells: List[Optional[GapCell]]) -> GapReport:
    """Assemble a report from per-cell gap data (``None``s dropped —
    skipped cells and compute-only schedules carry no gap)."""
    return GapReport(cells=[c for c in cells if c is not None])


def load_gap_report(path: Union[str, Path]) -> GapReport:
    """Load a written report/baseline, validating the schema version."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("schema") != GAP_SCHEMA:
        raise ValueError(
            f"unsupported gap-report schema {data.get('schema')!r} in {path}; "
            f"expected {GAP_SCHEMA}"
        )
    return GapReport(cells=[GapCell.from_dict(c) for c in data["cells"]])


def _gap_finding(rule: str, algorithm: str, message: str) -> Finding:
    return Finding(
        "gap", ERROR, message, algorithm=algorithm, rule=rule
    )


def compare_gap_reports(
    current: GapReport, baseline: GapReport, *, rel_tol: float = GAP_REL_TOL
) -> List[Finding]:
    """Ratchet ``current`` against a committed baseline report.

    Only regressions fire: a *better* gap, a newly certified algorithm
    or a brand-new algorithm passes silently (refresh the baseline to
    ratchet the improvement in).
    """
    findings: List[Finding] = []
    now = {a.algorithm: a for a in current.algorithms()}
    for base in baseline.algorithms():
        cur = now.get(base.algorithm)
        if cur is None:
            findings.append(
                _gap_finding(
                    "gap/uncertified-algorithm",
                    base.algorithm,
                    f"algorithm has a committed gap certificate "
                    f"({base.cells} cell(s)) but produced no gap cells in "
                    "this run",
                )
            )
            continue
        for level, was_certified, is_certified, base_gap, cur_gap in (
            (
                "shared",
                base.certified_shared,
                cur.certified_shared,
                base.ms_gap_min,
                cur.ms_gap_min,
            ),
            (
                "distributed",
                base.certified_distributed,
                cur.certified_distributed,
                base.md_gap_min,
                cur.md_gap_min,
            ),
        ):
            if not was_certified:
                continue
            if not is_certified:
                findings.append(
                    _gap_finding(
                        "gap/uncertified-algorithm",
                        base.algorithm,
                        f"lost its {level}-level near-optimality certificate: "
                        f"best gap {cur_gap:.3f} exceeds the certification "
                        f"threshold (baseline best gap {base_gap:.3f})",
                    )
                )
            elif cur_gap > base_gap * (1.0 + rel_tol):
                findings.append(
                    _gap_finding(
                        "gap/regression",
                        base.algorithm,
                        f"{level}-level best gap regressed from "
                        f"{base_gap:.3f} to {cur_gap:.3f} "
                        f"(> {rel_tol:.0%} tolerance)",
                    )
                )
    return findings
