"""The pluggable rule registry behind every :mod:`repro.check` analyzer.

Until PR 7 the checker's rules lived as hardcoded branches inside each
analyzer and a parallel id → description table inside the SARIF
exporter; adding a rule meant editing three files that could silently
drift.  This module is now the single source of truth:

* :class:`Rule` — one invariant with a stable id (``family/short-name``),
  a default severity, a one-line help text and the *tier* (analysis
  pass) that owns it.
* :data:`REGISTRY` — every rule the checker can emit, registered at
  import time.  The SARIF exporter renders its metadata into the
  ``rules`` array, ``repro-mmm check --list-rules`` prints it, and the
  lint/dataflow dispatchers consult it to know which checks to run.
* :class:`RuleConfig` — config-driven enable/disable by rule id or
  family (``--enable``/``--disable`` on the CLI).  An explicit enable
  beats an explicit disable beats the rule's registered default.
* Inline suppressions — ``# repro: noqa[rule-id]`` comments parsed by
  :func:`parse_suppressions` and applied by :class:`SuppressionIndex`.
  A suppression names the exact rule ids it silences (never a blanket
  waiver), may carry a justification after ``--``, and is itself
  checked: one that silences nothing raises the
  ``meta/unused-suppression`` meta-rule, so dead waivers cannot
  accumulate and mask a future real finding.

Severity here is the rule's *default level* (what the analyzers emit);
a finding's own severity always wins when counting errors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Collection, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.findings import ERROR, WARNING, Finding

#: Analysis tiers (which pass owns a rule).  ``schedule`` rules come
#: from the recorded-event analyzers, ``lint`` from the syntactic AST
#: pass, ``determinism``/``purity`` from the dataflow engine,
#: ``engine`` from the engine-conformance walk, ``gap`` from the
#: optimality-gap certificate, ``meta`` from the checker's own
#: self-checks (suppression hygiene).
TIERS = ("schedule", "lint", "determinism", "purity", "engine", "gap", "meta")


@dataclass(frozen=True)
class Rule:
    """One registered invariant: stable id, default level, help, tier."""

    id: str
    severity: str
    help: str
    tier: str
    enabled: bool = True

    def __post_init__(self) -> None:
        if "/" not in self.id:
            raise ValueError(f"rule id {self.id!r} is not 'family/short-name'")
        if self.severity not in (ERROR, WARNING):
            raise ValueError(f"rule {self.id}: bad severity {self.severity!r}")
        if self.tier not in TIERS:
            raise ValueError(f"rule {self.id}: unknown tier {self.tier!r}")

    @property
    def family(self) -> str:
        """The id's prefix (``lint`` in ``lint/mutable-default``)."""
        return self.id.split("/", 1)[0]

    @property
    def short_name(self) -> str:
        return self.id.split("/", 1)[1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "severity": self.severity,
            "tier": self.tier,
            "enabled": self.enabled,
            "help": self.help,
        }


class RuleRegistry:
    """Id-keyed rule catalogue; registration rejects duplicates."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id: str) -> Optional[Rule]:
        return self._rules.get(rule_id)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __len__(self) -> int:
        return len(self._rules)

    def all(self) -> List[Rule]:
        """Every rule, sorted by id (stable for tables and SARIF)."""
        return [self._rules[k] for k in sorted(self._rules)]

    def families(self) -> List[str]:
        return sorted({rule.family for rule in self._rules.values()})


@dataclass(frozen=True)
class RuleConfig:
    """Config-driven rule selection: ids or whole families.

    ``enabled``/``disabled`` hold selectors — an exact rule id
    (``lint/dead-branch``) or a family name (``lint``).  Precedence:
    an explicit enable beats an explicit disable beats the rule's
    registered default, with the more specific selector (exact id)
    beating the family either way.  Unknown rule ids (e.g. the dynamic
    ``<analyzer>/suppressed`` overflow markers) are always allowed.
    """

    enabled: Tuple[str, ...] = ()
    disabled: Tuple[str, ...] = ()

    @classmethod
    def from_selectors(
        cls,
        enable: Optional[Sequence[str]] = None,
        disable: Optional[Sequence[str]] = None,
    ) -> "RuleConfig":
        for selector in list(enable or []) + list(disable or []):
            if selector not in REGISTRY and selector not in REGISTRY.families():
                raise ValueError(
                    f"unknown rule or family {selector!r} "
                    "(see `repro-mmm check --list-rules`)"
                )
        return cls(tuple(enable or ()), tuple(disable or ()))

    def allows(self, rule_id: str) -> bool:
        """Whether findings of ``rule_id`` should be emitted/kept."""
        rule = REGISTRY.get(rule_id)
        family = rule.family if rule is not None else rule_id.split("/", 1)[0]
        # Exact id selectors outrank family selectors.
        if rule_id in self.enabled:
            return True
        if rule_id in self.disabled:
            return False
        if family in self.enabled:
            return True
        if family in self.disabled:
            return False
        return rule.enabled if rule is not None else True


#: The default, everything-at-registered-defaults configuration.
DEFAULT_CONFIG = RuleConfig()


def filter_findings(
    findings: Iterable[Finding], config: RuleConfig
) -> List[Finding]:
    """Drop findings whose rule the configuration disables."""
    return [f for f in findings if config.allows(f.rule_id)]


# ----------------------------------------------------------------------
# Inline suppressions: ``# repro: noqa[rule-id, ...] -- justification``
# ----------------------------------------------------------------------
#: The meta-rule id raised for suppressions that silence nothing.
UNUSED_SUPPRESSION = "meta/unused-suppression"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa\[(?P<ids>[^\]]*)\](?:\s*--\s*(?P<why>.*))?"
)
#: What a plausible rule id looks like.  A comment whose bracket holds
#: *no* plausible id (``noqa[<rule-id>]`` in documentation prose) is
#: not a suppression at all; one that mixes a plausible id with a
#: typo'd one is, and the typo is reported as an unknown rule.
_ID_RE = re.compile(r"^[a-z0-9_-]+/[a-z0-9._-]+$")


@dataclass
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    file: str
    line: int
    rule_ids: Tuple[str, ...]
    justification: str = ""
    #: Rule ids this comment actually silenced (filled by the filter).
    used: Set[str] = field(default_factory=set)


def parse_suppressions(source: str, filename: str) -> List[Suppression]:
    """Every ``# repro: noqa[...]`` comment in ``source``, in line order.

    The scan is line-based on purpose: a suppression silences findings
    anchored to *its own* line, exactly like flake8's ``noqa`` —
    position is the contract, not proximity.
    """
    out: List[Suppression] = []
    for number, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        if not any(_ID_RE.match(part) for part in ids):
            continue  # documentation mentioning the syntax, not a waiver
        out.append(
            Suppression(
                file=filename,
                line=number,
                rule_ids=ids,
                justification=(match.group("why") or "").strip(),
            )
        )
    return out


def _finding_line(finding: Finding) -> Optional[int]:
    if not finding.location:
        return None
    _, _, line = finding.location.rpartition(":")
    return int(line) if line.isdigit() else None


class SuppressionIndex:
    """Applies one file's suppressions and tracks which ones earned it."""

    def __init__(self, suppressions: Sequence[Suppression]) -> None:
        self._by_line: Dict[int, Suppression] = {s.line: s for s in suppressions}

    @classmethod
    def from_source(cls, source: str, filename: str) -> "SuppressionIndex":
        return cls(parse_suppressions(source, filename))

    def filter(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition into (kept, suppressed).

        A finding is suppressed only when a noqa comment sits on its
        exact line *and* names its exact rule id — a suppression for a
        different rule never masks it (property-tested).
        """
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            line = _finding_line(finding)
            entry = self._by_line.get(line) if line is not None else None
            if entry is not None and finding.rule_id in entry.rule_ids:
                entry.used.add(finding.rule_id)
                suppressed.append(finding)
            else:
                kept.append(finding)
        return kept, suppressed

    def unused_findings(
        self,
        active_families: Collection[str],
        config: Optional[RuleConfig] = None,
    ) -> List[Finding]:
        """``meta/unused-suppression`` findings for dead waivers.

        Only rule ids whose family actually *ran* on this file are
        judged: a ``determinism/...`` waiver in a file scanned with the
        lint family alone is neither used nor provably dead, so it is
        left alone — likewise one whose rule the configuration
        disables.  Unknown rule ids are always reported — they can
        never match anything.
        """
        out: List[Finding] = []
        for suppression in self._by_line.values():
            for rule_id in suppression.rule_ids:
                if rule_id in suppression.used:
                    continue
                known = rule_id in REGISTRY
                family = rule_id.split("/", 1)[0]
                if known and family not in active_families:
                    continue
                if known and config is not None and not config.allows(rule_id):
                    continue
                reason = (
                    f"suppression names unknown rule {rule_id!r}"
                    if not known
                    else f"suppression of {rule_id!r} matches no finding"
                )
                out.append(
                    Finding(
                        "meta",
                        ERROR,
                        f"{reason}; delete the waiver (dead suppressions "
                        "mask future real findings)",
                        location=f"{suppression.file}:{suppression.line}",
                        rule=UNUSED_SUPPRESSION,
                    )
                )
        return out


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
REGISTRY = RuleRegistry()


def _r(rule_id: str, severity: str, help_text: str, tier: str) -> Rule:
    return REGISTRY.register(Rule(rule_id, severity, help_text, tier))


# -- schedule analyzers (recorded-event proofs) ------------------------
_r("capacity/ws-overflow", ERROR,
   "Explicit working set exceeds a cache capacity", "schedule")
_r("capacity/param-constraint", ERROR,
   "Tile parameters violate a paper-§3 cache constraint", "schedule")
_r("presence/load-absent", ERROR,
   "Distributed load of a block absent from the shared cache", "schedule")
_r("presence/inclusion", ERROR,
   "Shared eviction while a core still holds the block", "schedule")
_r("presence/spurious-evict", ERROR,
   "Eviction of a non-resident block", "schedule")
_r("presence/absent-operand", ERROR,
   "Compute touches a block absent from the core's cache", "schedule")
_r("presence/redundant-load", WARNING,
   "Load of an already-resident block", "schedule")
_r("presence/dead-load", WARNING,
   "Block loaded and evicted without a single use", "schedule")
_r("presence/leaked-resident", WARNING,
   "Block still resident when the schedule ends", "schedule")
_r("coverage/wrong-matrix", ERROR,
   "Compute operands drawn from the wrong matrices", "schedule")
_r("coverage/inconsistent-update", ERROR,
   "Update coordinates are not C[i,j] += A[i,k]*B[k,j]", "schedule")
_r("coverage/out-of-space", ERROR,
   "Update outside the m*n*z iteration space", "schedule")
_r("coverage/duplicate-update", ERROR,
   "Update emitted more than once", "schedule")
_r("coverage/missing-update", ERROR,
   "C cell accumulated fewer than z contributions", "schedule")
_r("race/write-write", ERROR,
   "Two cores write one block in the same epoch", "schedule")
_r("race/read-write", ERROR,
   "A core reads a block another core concurrently writes", "schedule")
_r("cost/formula-mismatch", ERROR,
   "Counted misses contradict the closed-form prediction", "schedule")
_r("cost/formula-ratio", ERROR,
   "Counted misses leave the ragged-tile envelope of the formula",
   "schedule")
_r("cost/below-lower-bound", ERROR,
   "Counted misses beat the Loomis-Whitney lower bound", "schedule")
_r("cost/below-tight-bound", ERROR,
   "Counted misses beat the strongest (tight) lower bound", "schedule")
_r("cost/tdata-mismatch", ERROR,
   "Tdata from counted misses disagrees with the prediction", "schedule")
_r("schedule/raised", ERROR,
   "Schedule raised while being recorded", "schedule")

# -- gap certificate ----------------------------------------------------
_r("gap/regression", ERROR,
   "A certified optimality gap regressed against the baseline", "gap")
_r("gap/uncertified-algorithm", ERROR,
   "An algorithm lost its near-optimality certificate", "gap")

# -- engine conformance -------------------------------------------------
_r("engine/silent-fallback", WARNING,
   "Configuration silently falls back from replay to step", "engine")

# -- syntactic lint -----------------------------------------------------
_r("lint/explicit-guard", ERROR,
   "Cache directive not wrapped in 'if ctx.explicit'", "lint")
_r("lint/unregistered-algorithm", ERROR,
   "Concrete schedule missing from the registry", "lint")
_r("lint/mutable-default", ERROR,
   "Mutable default argument", "lint")
_r("lint/float-equality", ERROR,
   "Equality comparison on a floating-point Tdata value", "lint")
_r("lint/dead-branch", ERROR,
   "'if' whose whole body is 'pass' and that has no 'else'", "lint")
_r("lint/init-self-call", ERROR,
   "Explicit self.__init__(...) call used as a reset", "lint")
_r("lint/nonatomic-artifact-write", ERROR,
   "Artifact written without the atomic store helper", "lint")
_r("lint/fallback-telemetry", ERROR,
   "Engine-fallback site does not record telemetry", "lint")
_r("lint/unpinned-bench-engine", ERROR,
   "Benchmark runs an experiment without pinning engine=", "lint")
_r("lint/syntax", ERROR,
   "Source file does not parse", "lint")

# -- determinism (dataflow tier) ---------------------------------------
_r("determinism/wall-clock", ERROR,
   "Wall-clock read on a fingerprint/checkpoint/serde path", "determinism")
_r("determinism/rng", ERROR,
   "Unseeded randomness on a fingerprint/checkpoint/serde path",
   "determinism")
_r("determinism/unsorted-walk", ERROR,
   "Filesystem iteration order used without sorted()", "determinism")
_r("determinism/set-order", ERROR,
   "Unordered set iteration reaching serialized output", "determinism")
_r("determinism/hash-in-key", ERROR,
   "PYTHONHASHSEED-dependent hash() in a persisted key", "determinism")

# -- fingerprint purity (dataflow tier) --------------------------------
_r("purity/knob-in-fingerprint", ERROR,
   "Engine knob flows into a cell fingerprint or checkpoint record",
   "purity")

# -- meta (checker self-checks) ----------------------------------------
_r(UNUSED_SUPPRESSION, ERROR,
   "A 'repro: noqa' suppression silences no finding", "meta")
