"""Tight-bound conformance: counted misses vs the strongest lower bounds.

``cost/below-lower-bound`` already proves counted traffic never beats
the paper's Loomis–Whitney bounds; this analyzer raises the bar to the
*strongest known* bound per level (:func:`repro.model.bounds.shared_bounds`
/ :func:`~repro.model.bounds.distributed_bounds`): the SLLvdG tight
two-term bound, the Al Daas memory-independent floor and the compulsory
traffic, whichever binds.  A counted value below the binding bound is a
``cost/below-tight-bound`` error — the counting model (not the
schedule) is unsound, exactly like the Loomis–Whitney rule.

On divisible orders the counted values equal the closed forms exactly
(``cost/formula-mismatch`` guarantees it), so the proof is exact; on
ragged orders the counts are still exact per schedule but sit inside
the formula envelope, whose measured slack
(:func:`repro.check.cost.formula_envelope`) rides along in the
:class:`~repro.check.gap.GapCell` this analyzer emits for the
optimality-gap certificate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algorithms.base import MatmulAlgorithm
from repro.check.cost import (
    EXACT_REL_TOL,
    CountedCosts,
    FormulaEnvelope,
    formula_envelope,
)
from repro.check.findings import ERROR, Finding
from repro.check.gap import GapCell
from repro.model.bounds import distributed_bounds, shared_bounds


def check_tight_bounds(
    alg: MatmulAlgorithm,
    counted: CountedCosts,
    *,
    machine: str = "",
) -> Tuple[List[Finding], GapCell]:
    """Prove one cell's counted misses clear every lower bound.

    Returns the (possibly empty) findings plus the cell's gap-report
    entry.  ``counted`` comes from the runner's single
    :func:`~repro.check.cost.count_costs` walk.
    """
    platform = alg.machine
    m, n, z = alg.m, alg.n, alg.z
    sb = shared_bounds(platform, m, n, z)
    db = distributed_bounds(platform, m, n, z)
    findings: List[Finding] = []

    def fail(message: str) -> None:
        findings.append(
            Finding(
                "cost",
                ERROR,
                message,
                algorithm=alg.name,
                machine=machine,
                rule="cost/below-tight-bound",
            )
        )

    if counted.ms < sb.best * (1.0 - EXACT_REL_TOL):
        fail(
            f"counted MS={counted.ms} beats the {sb.binding} shared-level "
            f"lower bound {sb.best:.1f} (loomis-whitney="
            f"{sb.loomis_whitney:.1f}, tight={sb.tight:.1f}, compulsory="
            f"{sb.compulsory:.1f}); the counting model is unsound for this "
            "schedule"
        )
    if counted.md_max < db.best * (1.0 - EXACT_REL_TOL):
        fail(
            f"counted MD={counted.md_max} beats the {db.binding} "
            f"distributed-level lower bound {db.best:.1f} (loomis-whitney="
            f"{db.loomis_whitney:.1f}, tight={db.tight:.1f}, "
            f"memory-independent={db.memory_independent:.1f}); the counting "
            "model is unsound for this schedule"
        )

    envelope = formula_envelope(alg, counted)
    cell = GapCell(
        algorithm=alg.name,
        machine=machine,
        m=m,
        n=n,
        z=z,
        ms=counted.ms,
        md=counted.md_max,
        ms_bounds={
            "loomis-whitney": sb.loomis_whitney,
            "tight": sb.tight,
            "compulsory": sb.compulsory,
        },
        md_bounds={
            "loomis-whitney": db.loomis_whitney,
            "tight": db.tight,
            "memory-independent": db.memory_independent,
        },
        ms_binding=sb.binding,
        md_binding=db.binding,
        divisible=envelope.divisible if envelope is not None else False,
        envelope=_envelope_dict(envelope),
    )
    return findings, cell


def _envelope_dict(
    envelope: Optional[FormulaEnvelope],
) -> Optional[Dict[str, float]]:
    if envelope is None:
        return None
    # ``divisible`` is carried on the GapCell itself.
    return {
        "predicted_ms": envelope.predicted_ms,
        "predicted_md": envelope.predicted_md,
        "ms_ratio": envelope.ms_ratio,
        "md_ratio": envelope.md_ratio,
        "ms_used": envelope.ms_used,
        "md_used": envelope.md_used,
    }
