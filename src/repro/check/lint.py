"""AST lint pass enforcing repo idioms over :mod:`repro` sources.

Seven rules, each born from a real failure mode of this codebase:

* ``explicit-guard`` — in ``algorithms/*.py``, calls to the explicit
  directives (``load_shared``, ``evict_shared``, ``load_dist``,
  ``evict_dist``) must sit under an ``if`` whose condition references
  ``explicit`` (``if ctx.explicit:`` or a hoisted ``if explicit:``).
  An unguarded directive silently burns cycles on the very hot LRU and
  numeric paths, where the calls are no-ops.
* ``unregistered-algorithm`` — every concrete
  :class:`~repro.algorithms.base.MatmulAlgorithm` subclass defined in
  ``algorithms/*.py`` must be registered in
  :mod:`repro.algorithms.registry`; an unregistered schedule is
  invisible to the CLI, the experiment harness, the tests *and* this
  package's ``check_all``.
* ``mutable-default`` — no mutable default arguments (``[]``, ``{}``,
  ``set()``, …): results containers that survive across calls have
  corrupted sweeps before.
* ``float-equality`` — no ``==`` / ``!=`` on floating-point ``Tdata``
  values (``Tdata = MS/σS + MD/σD`` mixes two float divisions; compare
  with a tolerance instead).
* ``dead-branch`` — no ``if`` statement whose entire body is ``pass``
  and that has no ``else``: the condition reads as if it handles a case
  but does nothing.  The LRU hierarchy carried exactly such a branch
  for dirty-victim write-back — it *looked* handled and masked a real
  undercounting bug.  ``elif … : pass`` inside a dispatch chain is
  exempt (there the no-op is an explicit "this case needs nothing").
* ``init-self-call`` — no ``self.__init__(...)`` calls: re-running
  ``__init__`` as a reset silently re-reads constructor arguments off
  ``self`` and skips any state added outside ``__init__``; write an
  explicit reinitialisation instead.
* ``fallback-telemetry`` — any function that consults the replay
  engine's ``supports(...)`` predicate (outside :mod:`repro.check`,
  which only *reasons* about it) must also reference
  ``note_engine_fallback``: a call site that can decide to fall back
  from replay to step but records no telemetry reintroduces exactly
  the silent-fallback hazard :mod:`repro.check.enginemodel` exists to
  surface.
* ``unpinned-bench-engine`` — in ``benchmarks/``, every direct
  ``run_experiment(...)`` call must pass ``engine=`` explicitly.  The
  default engine memoizes compiled traces and replay results, so an
  unpinned benchmark that *believes* it measures the step engine (or a
  cold replay) can silently measure a dict probe instead — the numbers
  look spectacular and mean nothing.  Pinning makes the measured
  configuration part of the benchmark's source.
* ``nonatomic-artifact-write`` — outside :mod:`repro.store`, no direct
  ``write_text``/``write_bytes`` calls and no write-mode ``open``:
  every artifact writer must go through the atomic tmp-file + fsync +
  rename helper (:mod:`repro.store.atomic`), because a plain write torn
  by a crash leaves silently truncated JSON/CSV that every reader then
  trusts.  Manifests, CSVs, cache entries and baselines all carried
  exactly this bug before the run store existed.

The syntactic rules above are dispatched through the
:mod:`repro.check.rules` registry (config-driven enable/disable), and
this module also hosts the per-file scan *orchestrator*
(:func:`scan_source` / :func:`run_lint`): it layers the dataflow
analyzer families — :mod:`repro.check.determinism` on
fingerprint-feeding modules and ``tests/``, :mod:`repro.check.purity`
on the whole package — over the lint pass, applies inline
``# repro: noqa[rule-id]`` suppressions, raises
``meta/unused-suppression`` for dead waivers, and scans files in
parallel.  The lint rules themselves are purely syntactic
(:mod:`ast`), need no imports of the linted code, and run over the
whole package in well under a second.
"""

from __future__ import annotations

import ast
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.check.findings import ERROR, Finding
from repro.check.rules import (
    DEFAULT_CONFIG,
    UNUSED_SUPPRESSION,
    RuleConfig,
    SuppressionIndex,
    filter_findings,
)

#: The explicit-directive method names of the execution contexts.
DIRECTIVES = frozenset({"load_shared", "evict_shared", "load_dist", "evict_dist"})

#: Call targets whose results are mutable (as default arguments).
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})


def _finding(rule: str, message: str, filename: str, line: int) -> Finding:
    return Finding(
        "lint",
        ERROR,
        f"{rule}: {message}",
        location=f"{filename}:{line}",
        rule=f"lint/{rule}",
    )


def _mentions_explicit(node: ast.AST) -> bool:
    """Whether a condition expression references an ``explicit`` flag."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "explicit":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "explicit":
            return True
    return False


def _directive_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in DIRECTIVES:
        return func.attr
    if isinstance(func, ast.Name) and func.id in DIRECTIVES:
        return func.id
    return None


def _check_explicit_guard(
    tree: ast.AST, filename: str, findings: List[Finding]
) -> None:
    """Rule ``explicit-guard``: directives only under ``if … explicit …``."""

    def visit(node: ast.AST, guarded: bool) -> None:
        if isinstance(node, ast.If) and _mentions_explicit(node.test):
            for child in node.body:
                visit(child, True)
            for child in node.orelse:
                # The else-branch of `if explicit:` is the *unguarded* path.
                visit(child, guarded)
            return
        if isinstance(node, ast.Call):
            name = _directive_name(node)
            if name is not None and not guarded:
                findings.append(
                    _finding(
                        "explicit-guard",
                        f"directive ctx.{name}(...) is not wrapped in "
                        "'if ctx.explicit'",
                        filename,
                        node.lineno,
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, guarded)

    visit(tree, False)


def _check_registered(
    nodes: Sequence[ast.AST],
    filename: str,
    registered: Set[str],
    findings: List[Finding],
) -> None:
    """Rule ``unregistered-algorithm``: concrete schedules are registered."""
    for node in nodes:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {
            base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
            for base in node.bases
        }
        if "MatmulAlgorithm" not in bases:
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "name"
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                name = stmt.value.value
                if name != "abstract" and name not in registered:
                    findings.append(
                        _finding(
                            "unregistered-algorithm",
                            f"schedule {name!r} ({node.name}) is not "
                            "registered in repro.algorithms.registry",
                            filename,
                            node.lineno,
                        )
                    )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _MUTABLE_CALLS
    return False


def _check_mutable_defaults(
    nodes: Sequence[ast.AST], filename: str, findings: List[Finding]
) -> None:
    """Rule ``mutable-default``: no shared mutable default arguments."""
    for node in nodes:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults: List[Optional[ast.expr]] = list(node.args.defaults)
        defaults += list(node.args.kw_defaults)
        for default in defaults:
            if default is not None and _is_mutable_default(default):
                findings.append(
                    _finding(
                        "mutable-default",
                        f"function {node.name!r} has a mutable default argument",
                        filename,
                        default.lineno,
                    )
                )


def _names_tdata(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return "tdata" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "tdata" in node.attr.lower()
    return False


def _check_float_equality(
    nodes: Sequence[ast.AST], filename: str, findings: List[Finding]
) -> None:
    """Rule ``float-equality``: no ``==`` / ``!=`` on ``Tdata`` values."""
    for node in nodes:
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            continue
        if _names_tdata(node.left) or any(_names_tdata(c) for c in node.comparators):
            findings.append(
                _finding(
                    "float-equality",
                    "'==' / '!=' on a floating-point Tdata value; compare "
                    "with a tolerance (math.isclose / pytest.approx)",
                    filename,
                    node.lineno,
                )
            )


def _elif_ifs(nodes: Sequence[ast.AST]) -> Set[int]:
    """Ids of ``ast.If`` nodes that are really ``elif`` arms.

    An ``elif`` is encoded as an ``If`` standing alone in its parent
    ``If``'s ``orelse``; those are part of a dispatch chain and exempt
    from the ``dead-branch`` rule.
    """
    out: Set[int] = set()
    for node in nodes:
        if (
            isinstance(node, ast.If)
            and len(node.orelse) == 1
            and isinstance(node.orelse[0], ast.If)
        ):
            out.add(id(node.orelse[0]))
    return out


def _check_dead_branch(
    nodes: Sequence[ast.AST], filename: str, findings: List[Finding]
) -> None:
    """Rule ``dead-branch``: no ``if cond: pass`` with no ``else``."""
    elifs = _elif_ifs(nodes)
    for node in nodes:
        if not isinstance(node, ast.If) or id(node) in elifs:
            continue
        if node.orelse:
            continue
        if len(node.body) == 1 and isinstance(node.body[0], ast.Pass):
            findings.append(
                _finding(
                    "dead-branch",
                    "'if' whose whole body is 'pass' and that has no "
                    "'else': the condition looks handled but does "
                    "nothing — handle it or delete it",
                    filename,
                    node.lineno,
                )
            )


def _check_init_self_call(
    nodes: Sequence[ast.AST], filename: str, findings: List[Finding]
) -> None:
    """Rule ``init-self-call``: no ``self.__init__(...)`` resets."""
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__init__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            findings.append(
                _finding(
                    "init-self-call",
                    "'self.__init__(...)' used as a reset; write an "
                    "explicit reinitialisation (it is both clearer and "
                    "robust to state added outside __init__)",
                    filename,
                    node.lineno,
                )
            )


def _references_name(tree: ast.AST, name: str) -> bool:
    """Whether any node in ``tree`` names ``name`` (bare or attribute)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
    return False


def _check_fallback_telemetry(
    nodes: Sequence[ast.AST], filename: str, findings: List[Finding]
) -> None:
    """Rule ``fallback-telemetry``: ``supports(...)`` callers record it.

    A function that consults the replay ``supports`` predicate decides
    between the replay and step engines; unless it also references
    ``note_engine_fallback`` (to record the step fallback) the decision
    is invisible at runtime.
    """
    for func in nodes:
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        consults = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, (ast.Name, ast.Attribute))
            and (
                node.func.id
                if isinstance(node.func, ast.Name)
                else node.func.attr
            )
            == "supports"
            for node in ast.walk(func)
        )
        if consults and not _references_name(func, "note_engine_fallback"):
            findings.append(
                _finding(
                    "fallback-telemetry",
                    f"function {func.name!r} consults the replay engine's "
                    "supports(...) predicate but never references "
                    "note_engine_fallback; a replay->step fallback decided "
                    "here would be silent — record it",
                    filename,
                    func.lineno,
                )
            )


def _open_write_mode(call: ast.Call) -> bool:
    """Whether a call is a write/append-mode ``open`` / ``Path.open``."""
    func = call.func
    if isinstance(func, ast.Name):
        if func.id != "open":
            return False
        mode_position = 1  # builtin: open(file, mode, ...)
    elif isinstance(func, ast.Attribute) and func.attr == "open":
        mode_position = 0  # method: path.open(mode, ...)
    else:
        return False
    mode: Optional[ast.expr] = None
    if len(call.args) > mode_position:
        mode = call.args[mode_position]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return False  # default mode is "r"; dynamic modes stay out of scope
    return any(ch in mode.value for ch in "wax")


def _check_nonatomic_write(
    nodes: Sequence[ast.AST], filename: str, findings: List[Finding]
) -> None:
    """Rule ``nonatomic-artifact-write``: writes go through repro.store."""
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            findings.append(
                _finding(
                    "nonatomic-artifact-write",
                    f"direct .{func.attr}(...) outside repro.store: a crash "
                    "mid-write leaves a silently truncated artifact; use "
                    "repro.store.atomic.atomic_write_text/_bytes",
                    filename,
                    node.lineno,
                )
            )
        elif _open_write_mode(node):
            findings.append(
                _finding(
                    "nonatomic-artifact-write",
                    "write-mode open(...) outside repro.store: a crash "
                    "mid-write leaves a silently truncated artifact; use "
                    "repro.store.atomic (or repro.store.checkpoint for "
                    "append-only logs)",
                    filename,
                    node.lineno,
                )
            )


def _check_bench_engine_pin(
    nodes: Sequence[ast.AST], filename: str, findings: List[Finding]
) -> None:
    """Rule ``unpinned-bench-engine``: benchmarks pin ``engine=``."""
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name != "run_experiment":
            continue
        if any(kw.arg == "engine" for kw in node.keywords):
            continue
        findings.append(
            _finding(
                "unpinned-bench-engine",
                "run_experiment(...) without engine=: the default engine "
                "memoizes traces and replay results, so this benchmark may "
                "measure a dict probe instead of the engine it claims to; "
                "pin engine='replay' or engine='step' explicitly",
                filename,
                node.lineno,
            )
        )


#: The syntactic lint checks, in dispatch order.  Each entry is
#: ``(rule id, gate, check)`` where ``gate`` names the
#: :class:`FileProfile` condition under which the rule applies
#: (``explicit-guard``/``unregistered-algorithm`` have bespoke wiring
#: below because they need the profile/registry).
_SIMPLE_CHECKS: "Sequence[Tuple[str, str, _Check]]" = (
    ("lint/mutable-default", "always", _check_mutable_defaults),
    ("lint/float-equality", "always", _check_float_equality),
    ("lint/dead-branch", "always", _check_dead_branch),
    ("lint/init-self-call", "always", _check_init_self_call),
    ("lint/nonatomic-artifact-write", "not-store", _check_nonatomic_write),
    ("lint/fallback-telemetry", "not-check", _check_fallback_telemetry),
    ("lint/unpinned-bench-engine", "benchmark-only", _check_bench_engine_pin),
)

_Check = Callable[[Sequence[ast.AST], str, List[Finding]], None]


@dataclass(frozen=True)
class FileProfile:
    """Which analyzer families and module-role gates apply to a file.

    The role flags mirror the package layout: ``algorithms_module``
    enables the directive/registry rules, ``store_module`` exempts the
    one package allowed to perform raw writes, ``check_module`` exempts
    the analyzers that probe ``supports`` analytically.  The family
    flags pick analysis passes: ``lint`` (syntactic), ``determinism``
    (dataflow, fingerprint-feeding modules plus tests), ``purity``
    (dataflow, knob→fingerprint).
    """

    algorithms_module: bool = False
    store_module: bool = False
    check_module: bool = False
    benchmark_module: bool = False
    lint: bool = True
    determinism: bool = False
    purity: bool = False

    @property
    def families(self) -> Set[str]:
        out = {"meta"}
        if self.lint:
            out.add("lint")
        if self.determinism:
            out.add("determinism")
        if self.purity:
            out.add("purity")
        return out


def lint_source(
    source: str,
    filename: str,
    *,
    algorithms_module: bool = False,
    store_module: bool = False,
    check_module: bool = False,
    benchmark_module: bool = False,
    registered: Optional[Set[str]] = None,
    config: Optional[RuleConfig] = None,
) -> List[Finding]:
    """Lint one module's source text; ``filename`` is for reporting only.

    ``store_module`` marks files inside :mod:`repro.store`, the one
    place allowed to perform raw writes (it implements the atomic
    protocol everything else must use).  ``check_module`` marks files
    inside :mod:`repro.check`, which probe the replay ``supports``
    predicate analytically and are exempt from ``fallback-telemetry``.

    This is the bare ``lint`` family: no dataflow rules, no
    suppression handling — :func:`scan_source` is the full per-file
    pipeline.
    """
    cfg = config if config is not None else DEFAULT_CONFIG
    findings: List[Finding] = []
    tree = _parse(source, filename, findings)
    if tree is None:
        return findings
    _lint_tree(
        tree,
        filename,
        findings,
        profile=FileProfile(
            algorithms_module=algorithms_module,
            store_module=store_module,
            check_module=check_module,
            benchmark_module=benchmark_module,
        ),
        registered=registered or set(),
        config=cfg,
    )
    return findings


def _parse(
    source: str, filename: str, findings: List[Finding]
) -> Optional[ast.Module]:
    try:
        return ast.parse(source, filename=filename)
    except SyntaxError as exc:
        findings.append(
            _finding("syntax", f"cannot parse: {exc.msg}", filename, exc.lineno or 0)
        )
        return None


def _lint_tree(
    tree: ast.Module,
    filename: str,
    findings: List[Finding],
    *,
    profile: FileProfile,
    registered: Set[str],
    config: RuleConfig,
) -> None:
    # One walk shared by every check — walking per rule dominated the
    # scan's profile.
    nodes = list(ast.walk(tree))
    for rule_id, gate, check in _SIMPLE_CHECKS:
        if gate == "not-store" and profile.store_module:
            continue
        if gate == "not-check" and profile.check_module:
            continue
        if gate == "benchmark-only" and not profile.benchmark_module:
            continue
        if config.allows(rule_id):
            check(nodes, filename, findings)
    if profile.algorithms_module:
        if config.allows("lint/explicit-guard"):
            _check_explicit_guard(tree, filename, findings)
        if config.allows("lint/unregistered-algorithm"):
            _check_registered(nodes, filename, registered, findings)


def scan_source(
    source: str,
    filename: str,
    *,
    profile: Optional[FileProfile] = None,
    registered: Optional[Set[str]] = None,
    config: Optional[RuleConfig] = None,
) -> List[Finding]:
    """The full per-file pipeline: every applicable analyzer family,
    then inline ``# repro: noqa[rule-id]`` suppressions, then the
    ``meta/unused-suppression`` self-check.
    """
    from repro.check.dataflow import MultiHooks, TaintSpec, analyze, build_parent_map
    from repro.check.determinism import DeterminismHooks
    from repro.check.purity import PurityHooks, purity_spec

    prof = profile if profile is not None else FileProfile()
    cfg = config if config is not None else DEFAULT_CONFIG
    findings: List[Finding] = []
    tree = _parse(source, filename, findings)
    if tree is None:
        return findings
    if prof.lint:
        _lint_tree(
            tree,
            filename,
            findings,
            profile=prof,
            registered=registered or set(),
            config=cfg,
        )
    # The dataflow pass costs ~10ms/file; a file with no fingerprint or
    # writer sink cannot produce a purity finding, so gate on the sink
    # names textually before paying for the engine.
    purity = prof.purity and (
        "cell_fingerprint" in source or "writer" in source
    )
    if prof.determinism or purity:
        # Both analyzers ride one dataflow pass: the determinism hooks
        # only read kinds and call shapes, so the purity spec (a strict
        # superset of the empty spec) serves both.
        hooks: List[Union[DeterminismHooks, PurityHooks]] = []
        if prof.determinism:
            hooks.append(DeterminismHooks(filename, build_parent_map(tree)))
        if purity:
            hooks.append(PurityHooks(filename))
        spec = purity_spec() if purity else TaintSpec()
        analyze(tree, spec, MultiHooks(hooks))
        for hook in hooks:
            findings += filter_findings(hook.findings, cfg)
    index = SuppressionIndex.from_source(source, filename)
    kept, _suppressed = index.filter(findings)
    if cfg.allows(UNUSED_SUPPRESSION):
        kept += index.unused_findings(prof.families, cfg)
    return kept


def _registered_names() -> Set[str]:
    from repro.algorithms.registry import ALGORITHMS, EXTRA_ALGORITHMS

    return set(ALGORITHMS) | set(EXTRA_ALGORITHMS)


#: Package files (relative, POSIX) on the determinism scope: the
#: modules that produce fingerprints, checkpoints, manifests or
#: serialized artifacts.  ``store/`` and ``fabric/`` are covered
#: wholesale by :func:`_profile_for`.
_DETERMINISM_FILES = frozenset(
    {
        "sim/parallel.py",
        "sim/telemetry.py",
        "sim/results.py",
        "sim/retrypolicy.py",
        "sim/faults.py",
        "check/incremental.py",
        "check/baseline.py",
        "check/findings.py",
        "check/sarif.py",
        "check/gap.py",
        "experiments/io.py",
    }
)


def _profile_for(path: Path, package_root: Optional[Path]) -> FileProfile:
    """Classify one file into its analyzer families and role gates."""
    relative: Optional[str] = None
    if package_root is not None:
        try:
            relative = path.relative_to(package_root).as_posix()
        except ValueError:
            relative = None
    in_tests = "tests" in path.parts and relative is None
    if in_tests:
        # Tests get the determinism hygiene pass only: they seed and
        # replay fingerprints, but repo idioms (atomic writes, guards)
        # do not apply to fixtures.
        return FileProfile(lint=False, determinism=True, purity=False)
    determinism = relative is not None and (
        relative.startswith(("store/", "fabric/"))
        or relative in _DETERMINISM_FILES
    )
    return FileProfile(
        algorithms_module=path.parent.name == "algorithms",
        store_module=path.parent.name == "store",
        check_module=path.parent.name == "check",
        benchmark_module="benchmarks" in path.parts and relative is None,
        lint=True,
        determinism=determinism,
        purity=relative is not None,
    )


def run_lint(
    root: Optional[Path] = None,
    *,
    paths: Optional[Iterable[Path]] = None,
    config: Optional[RuleConfig] = None,
    jobs: Optional[int] = None,
) -> List[Finding]:
    """The source scan over the :mod:`repro` package (or explicit files).

    ``root`` defaults to the installed package directory, so the pass
    always checks the code that would actually run.  When the package
    lives in a source checkout (``src/repro``), the sibling
    ``benchmarks/`` suite is scanned too — its artifact writers are
    held to the same rules (e.g. ``nonatomic-artifact-write``) as the
    package's — and ``tests/`` gets the determinism hygiene pass.

    Files are scanned in parallel (``jobs`` threads, default
    ``min(8, cpu)``); output order is deterministic regardless.
    """
    package_root: Optional[Path] = None
    if paths is None:
        if root is None:
            root = Path(__file__).resolve().parent.parent
        package_root = root
        scan = sorted(root.rglob("*.py"))
        if root.parent.name == "src":
            repo_root = root.parent.parent
            for sibling in ("benchmarks", "tests"):
                extra = repo_root / sibling
                if extra.is_dir():
                    scan += sorted(extra.rglob("*.py"))
        paths = scan
    else:
        paths = list(paths)
        package_root = root
    registered = _registered_names()
    cfg = config if config is not None else DEFAULT_CONFIG

    def scan_one(path: Path) -> List[Finding]:
        return scan_source(
            path.read_text(encoding="utf-8"),
            str(path),
            profile=_profile_for(path, package_root),
            registered=registered,
            config=cfg,
        )

    todo = list(paths)
    workers = jobs if jobs is not None else min(8, os.cpu_count() or 1)
    findings: List[Finding] = []
    if workers > 1 and len(todo) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for batch in pool.map(scan_one, todo):
                findings += batch
    else:
        for path in todo:
            findings += scan_one(path)
    return findings
