"""Baseline suppression: known findings don't fail CI, new ones do.

A baseline file (conventionally ``check-baseline.json`` at the repo
root) records the stable :meth:`~repro.check.findings.Finding.fingerprint`
of every accepted finding.  ``repro-mmm check --baseline`` subtracts
those from the run's findings before counting errors, so a legacy
warning doesn't block CI while any *new* finding still does — the
ratchet pattern of every mature static analyzer.

``--write-baseline`` regenerates the file from the current run; the
entries keep the rule id and message alongside the fingerprint so the
file reviews like a report, not like a hash dump.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Sequence, Set, Tuple

from repro.check.findings import Finding
from repro.exceptions import ReproError
from repro.store.atomic import atomic_write_text

#: Baseline file schema; bump on incompatible layout changes.
BASELINE_SCHEMA = 1


def load_baseline(path: Path) -> Set[str]:
    """Fingerprints suppressed by ``path``; a missing file is empty.

    Raises
    ------
    ReproError
        If the file exists but is not a valid baseline document.
    """
    if not path.exists():
        return set()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ReproError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != BASELINE_SCHEMA:
        raise ReproError(
            f"baseline {path} has unsupported schema "
            f"{payload.get('schema') if isinstance(payload, dict) else '?'!r}; "
            f"expected {BASELINE_SCHEMA}"
        )
    suppressions = payload.get("suppressions", [])
    fingerprints: Set[str] = set()
    for entry in suppressions:
        if isinstance(entry, dict) and isinstance(entry.get("fingerprint"), str):
            fingerprints.add(entry["fingerprint"])
    return fingerprints


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write all current findings as the new baseline; returns the count.

    Entries are sorted by (rule, fingerprint) so regenerating an
    unchanged repo produces a byte-identical file.
    """
    entries: List[Dict[str, Any]] = []
    seen: Set[str] = set()
    for finding in findings:
        fp = finding.fingerprint()
        if fp in seen:
            continue
        seen.add(fp)
        entries.append(
            {
                "fingerprint": fp,
                "rule": finding.rule_id,
                "severity": finding.severity,
                "message": finding.message,
            }
        )
    entries.sort(key=lambda e: (str(e["rule"]), str(e["fingerprint"])))
    payload = {"schema": BASELINE_SCHEMA, "suppressions": entries}
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return len(entries)


def apply_baseline(
    findings: Sequence[Finding], suppressed: Set[str]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (active, baselined) by fingerprint."""
    active: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        if finding.fingerprint() in suppressed:
            baselined.append(finding)
        else:
            active.append(finding)
    return active, baselined
