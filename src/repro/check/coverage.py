"""Coverage checking: every update emitted, exactly once, well-formed.

The static analogue of :func:`repro.numerics.executor.verify_schedule`:
instead of executing the block arithmetic and comparing against numpy,
the checker walks the recorded compute events and proves the
*index-space* property that implies numerical correctness for every
input: the multiset of emitted updates is exactly
``{(i, j, k) : 0 ≤ i < m, 0 ≤ j < n, 0 ≤ k < z}`` — each ``C[i, j]``
accumulates its ``z`` contributions exactly once — and every emitted
triple is coordinate-consistent (``C[i,j] += A[i,k] · B[k,j]``) with
operands drawn from the right matrices.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.cache.block import MAT_A, MAT_B, MAT_C, decode_key, key_name
from repro.check.events import COMPUTE, Event
from repro.check.findings import ERROR, Finding, FindingLimiter


def check_coverage(
    events: Sequence[Event],
    m: int,
    n: int,
    z: int,
    *,
    algorithm: str = "",
    machine: str = "",
    limit: int = 25,
) -> List[Finding]:
    """Prove the compute stream covers ``m × n × z`` exactly once each."""
    out = FindingLimiter("coverage", limit)

    def add(message: str, rule: str, index: int | None = None) -> None:
        out.add(
            Finding(
                "coverage",
                ERROR,
                message,
                algorithm=algorithm,
                machine=machine,
                event=index,
                rule=rule,
            )
        )

    seen: Set[Tuple[int, int, int]] = set()
    duplicates = 0
    for index, ev in enumerate(events):
        if ev[0] != COMPUTE:
            continue
        ckey, akey, bkey = ev[2], ev[3], ev[4]
        mat_a, i_a, k_a = decode_key(akey)
        mat_b, k_b, j_b = decode_key(bkey)
        mat_c, i_c, j_c = decode_key(ckey)
        if (mat_a, mat_b, mat_c) != (MAT_A, MAT_B, MAT_C):
            add(
                "compute expects operands from A, B and C, got "
                f"{key_name(akey)}, {key_name(bkey)}, {key_name(ckey)}",
                "coverage/wrong-matrix",
                index,
            )
            continue
        if i_a != i_c or k_a != k_b or j_b != j_c:
            add(
                f"inconsistent coordinates: C[{i_c},{j_c}] += "
                f"A[{i_a},{k_a}] · B[{k_b},{j_b}]",
                "coverage/inconsistent-update",
                index,
            )
            continue
        if not (i_c < m and j_c < n and k_a < z):
            add(
                f"update (i={i_c}, j={j_c}, k={k_a}) outside the "
                f"{m}×{n}×{z} iteration space",
                "coverage/out-of-space",
                index,
            )
            continue
        triple = (i_c, j_c, k_a)
        if triple in seen:
            duplicates += 1
            add(
                f"update (i={i_c}, j={j_c}, k={k_a}) emitted twice",
                "coverage/duplicate-update",
                index,
            )
        else:
            seen.add(triple)

    missing = m * n * z - len(seen)
    if missing:
        # Summarize per C cell rather than per triple: "C[i,j] got x/z".
        per_cell: dict[Tuple[int, int], int] = {}
        for i, j, _ in seen:
            per_cell[(i, j)] = per_cell.get((i, j), 0) + 1
        reported = 0
        for i in range(m):
            for j in range(n):
                got = per_cell.get((i, j), 0)
                if got != z:
                    add(
                        f"C[{i},{j}] accumulated {got}/{z} contributions",
                        "coverage/missing-update",
                    )
                    reported += 1
                    if reported >= limit:
                        break
            if reported >= limit:
                break
    return out.results()
