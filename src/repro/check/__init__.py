"""Static analysis of algorithm schedules.

The paper's algorithms are *schedules* — fixed sequences of explicit
cache movements and elementary block multiply-adds — and their
optimality claims rest on invariants that can be proved over the
*recorded* schedule without simulating a cache or touching a number:

* **capacity** — the explicit working set never exceeds ``CS`` / ``CD``
  and the derived tile parameters satisfy the paper's §3 constraints
  (``1 + λ + λ² ≤ CS``, ``1 + µ + µ² ≤ CD``, ``α² + 2αβ ≤ CS``);
* **presence** — no compute reads a block that was never loaded or was
  already evicted; no dead loads, redundant loads or spurious
  evictions; inclusivity is never violated;
* **coverage** — every ``C[i, j]`` accumulates exactly ``z``
  contributions, each ``(i, j, k)`` exactly once (the static analogue of
  :func:`repro.numerics.executor.verify_schedule`);
* **races** — a happens-before pass over the per-core event streams
  flags write/write and read/write conflicts on the same block by
  different cores with no intervening synchronization;
* **cost** — counted distinct-block load traffic must equal the
  paper's closed-form ``MS``/``MD`` (exactly, on divisible orders) and
  may never beat the §2.3 Loomis–Whitney lower bounds;
* **tightbounds / gap** — counted misses must also clear the strongest
  known bounds (SLLvdG tight, memory-independent, compulsory), and
  every cell's measured/bound ratio feeds a per-algorithm
  optimality-gap certificate (``gap-report.json``) ratcheted against a
  committed baseline;
* **enginemodel** — a static walk of the configuration space and the
  experiment/sweep call sites flags every cell that will silently fall
  back from the replay engine to the step engine;
* **lint** — an AST pass over the sources enforcing repo idioms
  (directives wrapped in ``if ctx.explicit``, schedules registered, no
  mutable defaults, no ``==`` on floating-point ``Tdata``, engine
  fallback sites recording telemetry);
* **purity / determinism** — an intraprocedural dataflow engine
  (:mod:`repro.check.dataflow`) statically proves that no engine knob
  reaches a cell fingerprint or checkpoint record
  (``purity/knob-in-fingerprint``) and that the fingerprint/serde
  modules are free of wall-clock, RNG, filesystem-order and set-order
  nondeterminism (``determinism/*``).

Every rule lives in the :mod:`repro.check.rules` registry (id,
severity, help text, tier) with config-driven enable/disable and
inline ``# repro: noqa[rule-id]`` suppressions guarded by a
``meta/unused-suppression`` self-check.

Every finding carries a stable ``rule`` id and a content fingerprint;
:mod:`repro.check.baseline` suppresses accepted fingerprints,
:mod:`repro.check.incremental` caches unchanged cells under
``.repro-check-cache/`` and :mod:`repro.check.sarif` exports SARIF
2.1.0 for GitHub code scanning.

Entry points: :func:`repro.check.runner.analyze_schedule` for one
algorithm instance, :func:`repro.check.runner.check_all` for the full
algorithm × machine matrix, and ``repro-mmm check`` on the command
line.
"""

from __future__ import annotations

from repro.check.baseline import apply_baseline, load_baseline, write_baseline
from repro.check.capacity import check_capacity, check_parameters
from repro.check.cost import (
    CountedCosts,
    FormulaEnvelope,
    check_cost,
    count_costs,
    formula_envelope,
)
from repro.check.coverage import check_coverage
from repro.check.determinism import check_determinism
from repro.check.enginemodel import check_engine_model
from repro.check.events import AnalysisContext
from repro.check.findings import CHECKER_VERSION, Finding
from repro.check.gap import (
    AlgorithmGap,
    GapCell,
    GapReport,
    build_gap_report,
    compare_gap_reports,
    load_gap_report,
)
from repro.check.incremental import ReportCache
from repro.check.lint import run_lint, scan_source
from repro.check.presence import check_presence
from repro.check.purity import check_purity
from repro.check.races import check_races
from repro.check.rules import REGISTRY, Rule, RuleConfig
from repro.check.runner import (
    ScheduleReport,
    analyze_schedule,
    check_all,
    source_scan,
)
from repro.check.sarif import to_sarif, write_sarif
from repro.check.tightbounds import check_tight_bounds

__all__ = [
    "AlgorithmGap",
    "AnalysisContext",
    "CHECKER_VERSION",
    "CountedCosts",
    "Finding",
    "FormulaEnvelope",
    "GapCell",
    "GapReport",
    "REGISTRY",
    "ReportCache",
    "Rule",
    "RuleConfig",
    "ScheduleReport",
    "analyze_schedule",
    "apply_baseline",
    "build_gap_report",
    "check_all",
    "check_capacity",
    "check_cost",
    "check_coverage",
    "check_determinism",
    "check_engine_model",
    "check_parameters",
    "check_presence",
    "check_purity",
    "check_races",
    "check_tight_bounds",
    "compare_gap_reports",
    "count_costs",
    "formula_envelope",
    "load_baseline",
    "load_gap_report",
    "run_lint",
    "scan_source",
    "source_scan",
    "to_sarif",
    "write_sarif",
]
