"""Static analysis of algorithm schedules.

The paper's algorithms are *schedules* — fixed sequences of explicit
cache movements and elementary block multiply-adds — and their
optimality claims rest on invariants that can be proved over the
*recorded* schedule without simulating a cache or touching a number:

* **capacity** — the explicit working set never exceeds ``CS`` / ``CD``
  and the derived tile parameters satisfy the paper's §3 constraints
  (``1 + λ + λ² ≤ CS``, ``1 + µ + µ² ≤ CD``, ``α² + 2αβ ≤ CS``);
* **presence** — no compute reads a block that was never loaded or was
  already evicted; no dead loads, redundant loads or spurious
  evictions; inclusivity is never violated;
* **coverage** — every ``C[i, j]`` accumulates exactly ``z``
  contributions, each ``(i, j, k)`` exactly once (the static analogue of
  :func:`repro.numerics.executor.verify_schedule`);
* **races** — a happens-before pass over the per-core event streams
  flags write/write and read/write conflicts on the same block by
  different cores with no intervening synchronization;
* **lint** — an AST pass over the sources enforcing repo idioms
  (directives wrapped in ``if ctx.explicit``, schedules registered, no
  mutable defaults, no ``==`` on floating-point ``Tdata``).

Entry points: :func:`repro.check.runner.analyze_schedule` for one
algorithm instance, :func:`repro.check.runner.check_all` for the full
algorithm × machine matrix, and ``repro-mmm check`` on the command
line.
"""

from __future__ import annotations

from repro.check.capacity import check_capacity, check_parameters
from repro.check.coverage import check_coverage
from repro.check.events import AnalysisContext
from repro.check.findings import Finding
from repro.check.lint import run_lint
from repro.check.presence import check_presence
from repro.check.races import check_races
from repro.check.runner import ScheduleReport, analyze_schedule, check_all

__all__ = [
    "AnalysisContext",
    "Finding",
    "ScheduleReport",
    "analyze_schedule",
    "check_all",
    "check_capacity",
    "check_coverage",
    "check_parameters",
    "check_presence",
    "check_races",
    "run_lint",
]
