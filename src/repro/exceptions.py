"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common failure families.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid machine/algorithm configuration was supplied.

    Raised, e.g., for non-positive cache sizes, a shared cache smaller
    than the union of the distributed caches, or a core count that an
    algorithm cannot handle (Algorithm 2 requires a square core count).
    """


class CapacityError(ReproError):
    """An IDEAL-mode load would exceed the capacity of a cache.

    The ideal cache model puts the algorithm in charge of replacement;
    overflowing a cache is therefore an *algorithm bug*, not a miss, and
    the simulator refuses to mask it.
    """


class InclusionError(ReproError):
    """An IDEAL-mode operation would violate cache inclusivity.

    The paper's model mandates that the shared cache contain every block
    held by any distributed cache.  Loading a block into a distributed
    cache while it is absent from the shared cache — or evicting a block
    from the shared cache while a distributed cache still holds it — is
    rejected in checked mode.
    """


class PresenceError(ReproError):
    """A compute step touched a block that IDEAL mode never loaded.

    Only raised when presence checking is enabled (``check=True`` on the
    ideal hierarchy); it signals that the algorithm's explicit load
    schedule does not cover its compute schedule.
    """


class ScheduleError(ReproError):
    """An algorithm emitted an inconsistent or incomplete schedule.

    For instance, a numeric execution that never writes some block of
    ``C``, or a block multiply-add with mismatched operand coordinates.
    """


class ParameterError(ReproError, ValueError):
    """No feasible algorithm parameter exists for the given machine.

    Typical cause: a distributed cache too small to hold even the three
    blocks (one of each matrix) needed for a single multiply-add.
    """


class FabricError(ReproError):
    """A coordinator/worker fabric operation failed.

    Base of the fabric failure family; deliberately *not* in the
    permanent-error set — fabric failures are infrastructure weather
    (a dropped connection, a dead peer) and retrying is the norm.
    """


class ProtocolError(FabricError):
    """A fabric peer sent a malformed, corrupt or unexpected message.

    Covers framing violations (oversized or unterminated lines), JSON
    that does not parse, version/checksum mismatches, and replies whose
    type the requester cannot interpret.
    """
