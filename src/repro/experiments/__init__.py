"""Experiment harness: one entry point per paper table/figure.

:mod:`repro.experiments.figures` regenerates each of the paper's
Figures 4–12 as structured :class:`~repro.experiments.figures.Figure`
objects; :mod:`repro.experiments.tables` reproduces the §4.1 cache
configuration table; :mod:`repro.experiments.io` renders either as
ASCII tables, CSV or Markdown.
"""

from repro.experiments.figures import (
    Figure,
    Panel,
    FIGURES,
    get_figure,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
)
from repro.experiments.tables import cache_configuration_table, parameter_table
from repro.experiments.io import (
    render_panel,
    render_figure,
    panel_to_csv,
    figure_to_csv,
)

__all__ = [
    "Figure",
    "Panel",
    "FIGURES",
    "get_figure",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "cache_configuration_table",
    "parameter_table",
    "render_panel",
    "render_figure",
    "panel_to_csv",
    "figure_to_csv",
]
