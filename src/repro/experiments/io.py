"""Rendering of figures and tables: ASCII, CSV, Markdown.

The benchmark harness prints the same rows/series the paper plots;
these helpers keep that output consistent everywhere (benches, CLI,
examples).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.experiments.figures import Figure, Panel
from repro.store.atomic import atomic_write_text


def fieldname_union(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Union of all rows' keys, preserving first-seen order.

    Using only ``rows[0]``'s keys silently drops every column that
    first appears in a later row (e.g. ``MS_pred`` on the first
    algorithm with a registered formula mid-table).
    """
    names: List[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                names.append(key)
    return names


def _fmt(value: Any, width: int = 0) -> str:
    if isinstance(value, float):
        if value == 0:
            text = "0"
        elif abs(value) >= 1e5 or abs(value) < 1e-3:
            text = f"{value:.4g}"
        else:
            text = f"{value:.2f}".rstrip("0").rstrip(".")
    else:
        text = str(value)
    return text.rjust(width) if width else text


def render_rows(rows: Sequence[Mapping[str, Any]]) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty)"
    headers = fieldname_union(rows)
    cells = [[_fmt(row.get(h, "")) for h in headers] for row in rows]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) for i, h in enumerate(headers)
    ]
    out = io.StringIO()
    out.write("  ".join(h.rjust(w) for h, w in zip(headers, widths)) + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row_cells in cells:
        out.write("  ".join(c.rjust(w) for c, w in zip(row_cells, widths)) + "\n")
    return out.getvalue()


def render_panel(panel: Panel) -> str:
    """ASCII table of one panel: x column plus one column per series."""
    rows: List[Dict[str, Any]] = []
    for idx, x in enumerate(panel.xs):
        row: Dict[str, Any] = {panel.xlabel: x}
        for label, values in panel.series.items():
            row[label] = values[idx]
        rows.append(row)
    header = f"[{panel.key}] {panel.title}  ({panel.ylabel})\n"
    return header + render_rows(rows)


def render_figure(figure: Figure) -> str:
    """ASCII rendering of a whole figure (all panels)."""
    parts = [f"=== {figure.id}: {figure.title} ===", figure.caption, ""]
    for panel in figure.panels:
        parts.append(render_panel(panel))
    return "\n".join(parts)


def panel_to_csv(panel: Panel, path: Union[str, Path]) -> None:
    """Atomically write one panel as CSV (x column + one column per series)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([panel.xlabel, *panel.series])
    for idx, x in enumerate(panel.xs):
        writer.writerow([x, *(vals[idx] for vals in panel.series.values())])
    atomic_write_text(path, buffer.getvalue())


def figure_to_csv(figure: Figure, directory: Union[str, Path]) -> List[Path]:
    """Write every panel of a figure as ``<dir>/<figid><panel>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths: List[Path] = []
    for panel in figure.panels:
        path = directory / f"{figure.id}{panel.key}.csv"
        panel_to_csv(panel, path)
        paths.append(path)
    return paths


def rows_to_csv(
    rows: Sequence[Mapping[str, Any]],
    path: Union[str, Path],
    fieldnames: Optional[Sequence[str]] = None,
) -> None:
    """Atomically write dict rows as CSV.

    Columns are the first-seen-order union of every row's keys (not
    just ``rows[0]``'s), with missing cells left empty.  With no rows a
    header-only file is written — pass ``fieldnames`` to pin the header
    (otherwise an empty input yields an empty header line), so a
    downstream CSV reader always finds a parseable document instead of
    a zero-byte file.
    """
    names = list(fieldnames) if fieldnames is not None else fieldname_union(rows)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=names, restval="")
    writer.writeheader()
    writer.writerows(rows)
    atomic_write_text(path, buffer.getvalue())
