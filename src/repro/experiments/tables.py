"""Tabular reproductions: the §4.1 cache configurations and derived
algorithm parameters.

The paper's §4.1 derives block-unit cache capacities from a quad-core
with an 8 MB shared cache and four 256 KB private caches, for block
sides ``q ∈ {32, 64, 80}`` and the optimistic (data = 2/3 of the
private cache) and pessimistic (data = 1/2) assumptions.  The paper's
stated values are adopted verbatim as machine presets; this module also
recomputes the capacities from first principles so the (small) rounding
differences are visible.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.analysis.tradeoff_opt import optimal_parameters
from repro.model.machine import PRESETS, MulticoreMachine
from repro.model.params import lambda_param, mu_param

#: The physical platform of §4.1.
SHARED_BYTES = 8 * 1024 * 1024
DISTRIBUTED_BYTES = 256 * 1024


def cache_configuration_table() -> List[Dict[str, Any]]:
    """One row per preset: the paper's capacities vs the recomputed ones."""
    rows: List[Dict[str, Any]] = []
    for key, machine in PRESETS.items():
        fraction = 0.5 if "pessimistic" in key else 2.0 / 3.0
        block = machine.block_bytes
        # Raw arithmetic (not a MulticoreMachine: tiny blocks can yield
        # capacities below the simulator's cd >= 3 legality floor, and
        # the point of this table is to show the rounding).
        cs_recomputed = SHARED_BYTES // block
        cd_recomputed = int(DISTRIBUTED_BYTES * fraction) // block
        rows.append(
            {
                "preset": key,
                "q": machine.q,
                "CS (paper)": machine.cs,
                "CS (recomputed)": cs_recomputed,
                "CD (paper)": machine.cd,
                "CD (recomputed)": cd_recomputed,
                "data fraction": round(fraction, 3),
            }
        )
    return rows


def parameter_table() -> List[Dict[str, Any]]:
    """Derived algorithm parameters (λ, µ, α, β) for every preset."""
    rows: List[Dict[str, Any]] = []
    for key, machine in PRESETS.items():
        params = optimal_parameters(machine)
        rows.append(
            {
                "preset": key,
                "CS": machine.cs,
                "CD": machine.cd,
                "lambda": lambda_param(machine.cs),
                "mu": mu_param(machine.cd),
                "alpha": params.alpha,
                "beta": params.beta,
                "alpha_num": round(params.alpha_num, 2),
            }
        )
    return rows
