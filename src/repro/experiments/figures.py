"""Regeneration of the paper's Figures 4–12.

Each ``figureN`` function reruns the experiments behind the
corresponding figure and returns a :class:`Figure`: a list of
:class:`Panel` objects, each carrying the swept x values and the data
series (simulated algorithms, closed-form formulas, lower bounds) that
the paper plots.

Scale note
----------
The paper sweeps matrix orders up to 1100 blocks.  The default sweep
stops at order 96 to stay interactive, but every function takes an
``orders=`` / ``order=`` override, and the streaming bulk-replay
kernels (:mod:`repro.cache.replay`) make the full axis reachable: the
nightly ``full-figures`` CI pipeline regenerates Figs. 7–11 at order
1100, sharding figures by panel (``panels_filter``) and fanning sweep
cells over processes (``workers``).  All qualitative features of the
figures — who wins, the LRU-vs-formula factor-≤2 envelope, the
crossovers in the bandwidth sweep — are scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.model.bounds import (
    distributed_misses_lower_bound,
    shared_misses_lower_bound,
    tdata_lower_bound,
)
from repro.model.machine import MulticoreMachine, preset
from repro.sim.results import SweepResult
from repro.sim.runner import run_experiment
from repro.sim.sweep import order_sweep, ratio_sweep

#: Default square orders (in blocks) for LRU-heavy sweeps.
DEFAULT_ORDERS: Sequence[int] = (16, 32, 48, 64, 80, 96)

#: Default order for the bandwidth-ratio sweep (paper: 384).
DEFAULT_RATIO_ORDER: int = 64

#: Default bandwidth ratios r = σS/(σS+σD) for Fig. 12.
DEFAULT_RATIOS: Sequence[float] = tuple(i / 20 for i in range(1, 20))


@dataclass
class Panel:
    """One sub-plot: an x axis plus named data series."""

    key: str
    title: str
    xlabel: str
    ylabel: str
    xs: List[float]
    series: Dict[str, List[float]] = field(default_factory=dict)

    def add(self, label: str, values: Sequence[float]) -> None:
        if len(values) != len(self.xs):
            raise ConfigurationError(
                f"series {label!r} has {len(values)} points for {len(self.xs)} xs"
            )
        self.series[label] = list(values)


@dataclass
class Figure:
    """A regenerated paper figure."""

    id: str
    title: str
    caption: str
    panels: List[Panel]


# ----------------------------------------------------------------------
# Figures 4–6: LRU(C) and LRU(2C) against the formulas
# ----------------------------------------------------------------------
def _lru_vs_formula(
    fig_id: str,
    title: str,
    algorithm: str,
    metric: str,
    machine: MulticoreMachine,
    orders: Sequence[int],
    ylabel: str,
    workers: int = 0,
) -> Figure:
    """Common shape of Figs. 4–6: LRU(C), LRU(2C), formula, 2×formula."""
    sweep = order_sweep(
        [(algorithm, "lru"), (algorithm, "lru-2x")],
        machine,
        orders,
        workers=workers,
    )
    panel = Panel(
        key="a",
        title=title,
        xlabel="Matrix order (blocks)",
        ylabel=ylabel,
        xs=list(orders),
    )
    lru = sweep.series[f"{algorithm} lru"]
    lru2 = sweep.series[f"{algorithm} lru-2x"]
    panel.add(f"{algorithm} LRU (C)", [getattr(r, metric) for r in lru])
    panel.add(f"{algorithm} LRU (2C)", [getattr(r, metric) for r in lru2])
    if metric == "tdata":
        formula = [r.predicted.tdata(machine) for r in lru]
    elif metric == "ms":
        formula = [r.predicted.ms for r in lru]
    else:
        formula = [r.predicted.md for r in lru]
    panel.add("Formula (C)", formula)
    panel.add("2x Formula (C)", [2 * v for v in formula])
    return Figure(
        id=fig_id,
        title=title,
        caption="Impact of the LRU policy vs the ideal-model formula "
        "(the LRU(2C) curve must stay below 2x the formula, per Frigo et al.)",
        panels=[panel],
    )


def figure4(orders: Sequence[int] = DEFAULT_ORDERS, workers: int = 0) -> Figure:
    """Fig. 4: shared misses of Shared Opt. under LRU, CS = 977."""
    return _lru_vs_formula(
        "fig4",
        "Shared cache misses MS of Shared Opt. (CS=977)",
        "shared-opt",
        "ms",
        preset("q32"),
        orders,
        "Shared cache misses MS",
        workers=workers,
    )


def figure5(orders: Sequence[int] = DEFAULT_ORDERS, workers: int = 0) -> Figure:
    """Fig. 5: distributed misses of Distributed Opt. under LRU, CD = 21."""
    return _lru_vs_formula(
        "fig5",
        "Distributed cache misses MD of Distributed Opt. (CD=21)",
        "distributed-opt",
        "md",
        preset("q32"),
        orders,
        "Distributed cache misses MD",
        workers=workers,
    )


def figure6(orders: Sequence[int] = DEFAULT_ORDERS, workers: int = 0) -> Figure:
    """Fig. 6: Tdata of Tradeoff under LRU, CS = 977, CD = 21."""
    return _lru_vs_formula(
        "fig6",
        "Tdata of Tradeoff (CS=977, CD=21)",
        "tradeoff",
        "tdata",
        preset("q32"),
        orders,
        "Tdata",
        workers=workers,
    )


# ----------------------------------------------------------------------
# Figure 7: shared misses across algorithms, three cache configurations
# ----------------------------------------------------------------------
def figure7(
    orders: Sequence[int] = DEFAULT_ORDERS,
    workers: int = 0,
    panels_filter: Optional[Sequence[str]] = None,
) -> Figure:
    """Fig. 7: MS of Shared Opt. vs Outer Product, Shared Equal, bound.

    ``panels_filter`` restricts regeneration to the named panel keys
    (``a``/``b``/``c``) — the nightly full-figure pipeline shards one
    figure across jobs this way, skipping the sweeps of the panels it
    does not own.
    """
    panels: List[FigurePanel] = []
    for key, preset_key in (("a", "q32"), ("b", "q64"), ("c", "q80")):
        if panels_filter is not None and key not in panels_filter:
            continue
        machine = preset(preset_key)
        sweep = order_sweep(
            [
                ("shared-opt", "lru-50"),
                ("shared-opt", "ideal"),
                ("shared-equal", "lru-50"),
                ("outer-product", "lru-50"),
            ],
            machine,
            orders,
            workers=workers,
        )
        panel = Panel(
            key=key,
            title=f"CS={machine.cs}, q={machine.q}",
            xlabel="Matrix order (blocks)",
            ylabel="Shared cache misses MS",
            xs=list(orders),
        )
        panel.add("Shared Opt. LRU-50", sweep.values("shared-opt lru-50", "ms"))
        panel.add("Shared Opt. IDEAL", sweep.values("shared-opt ideal", "ms"))
        panel.add("Shared Equal LRU-50", sweep.values("shared-equal lru-50", "ms"))
        panel.add("Outer Product", sweep.values("outer-product lru-50", "ms"))
        panel.add(
            "Lower Bound",
            [shared_misses_lower_bound(machine, d, d, d) for d in orders],
        )
        panels.append(panel)
    return Figure(
        id="fig7",
        title="Shared cache misses MS vs matrix order",
        caption="Shared Opt. beats Outer Product and Shared Equal at the "
        "shared level; its IDEAL curve approaches the lower bound.",
        panels=panels,
    )


# ----------------------------------------------------------------------
# Figure 8: distributed misses across algorithms
# ----------------------------------------------------------------------
def figure8(
    orders: Sequence[int] = DEFAULT_ORDERS,
    workers: int = 0,
    panels_filter: Optional[Sequence[str]] = None,
) -> Figure:
    """Fig. 8: MD of Distributed Opt. vs Distributed Equal, Outer Product."""
    panels: List[FigurePanel] = []
    for key, preset_key, note in (
        ("a", "q32", "data = 2/3 of distributed cache"),
        ("b", "q32-pessimistic", "data = 1/2 of distributed cache"),
        ("c", "q64", "q=64: µ collapses to 1"),
    ):
        if panels_filter is not None and key not in panels_filter:
            continue
        machine = preset(preset_key)
        sweep = order_sweep(
            [
                ("distributed-opt", "lru-50"),
                ("distributed-opt", "ideal"),
                ("distributed-equal", "lru-50"),
                ("outer-product", "lru-50"),
            ],
            machine,
            orders,
            workers=workers,
        )
        panel = Panel(
            key=key,
            title=f"CD={machine.cd}, q={machine.q} ({note})",
            xlabel="Matrix order (blocks)",
            ylabel="Distributed cache misses MD",
            xs=list(orders),
        )
        panel.add(
            "Distributed Opt. LRU-50", sweep.values("distributed-opt lru-50", "md")
        )
        panel.add(
            "Distributed Opt. IDEAL", sweep.values("distributed-opt ideal", "md")
        )
        panel.add(
            "Distributed Equal LRU-50",
            sweep.values("distributed-equal lru-50", "md"),
        )
        panel.add("Outer Product", sweep.values("outer-product lru-50", "md"))
        panel.add(
            "Lower Bound",
            [distributed_misses_lower_bound(machine, d, d, d) for d in orders],
        )
        panels.append(panel)
    return Figure(
        id="fig8",
        title="Distributed cache misses MD vs matrix order",
        caption="Distributed Opt. approaches the bound with q=32 but loses "
        "its edge at q=64 where µ=1.",
        panels=panels,
    )


# ----------------------------------------------------------------------
# Figures 9–11: Tdata of all six algorithms
# ----------------------------------------------------------------------
_SIX_LRU50 = [
    ("shared-opt", "lru-50"),
    ("distributed-opt", "lru-50"),
    ("tradeoff", "lru-50"),
    ("outer-product", "lru-50"),
    ("shared-equal", "lru-50"),
    ("distributed-equal", "lru-50"),
]
_SIX_IDEAL = [(alg, "ideal") for alg, _ in _SIX_LRU50]


def _tdata_figure(
    fig_id: str,
    shared_preset_keys: Sequence[str],
    orders: Sequence[int],
    workers: int = 0,
    panels_filter: Optional[Sequence[str]] = None,
) -> Figure:
    """Common shape of Figs. 9–11: four panels (LRU-50/IDEAL × two CD).

    ``panels_filter`` restricts regeneration to the named panel keys
    (``a``–``d``), skipping the sweeps behind the others — the nightly
    pipeline shards each figure across two jobs (``a b`` / ``c d``) so
    the paper-scale LRU panels fit a runner's wall-clock budget.
    """
    panels: List[FigurePanel] = []
    combos = [
        (key, preset_key, setting_label, entries)
        for preset_key, key_pair in zip(
            shared_preset_keys, (("a", "b"), ("c", "d"))
        )
        for key, (setting_label, entries) in zip(
            key_pair, (("LRU-50", _SIX_LRU50), ("IDEAL", _SIX_IDEAL))
        )
    ]
    for key, preset_key, setting_label, entries in combos:
        if panels_filter is not None and key not in panels_filter:
            continue
        machine = preset(preset_key)
        sweep = order_sweep(entries, machine, orders, workers=workers)
        panel = Panel(
            key=key,
            title=f"{setting_label}, CS={machine.cs}, CD={machine.cd}",
            xlabel="Matrix order (blocks)",
            ylabel="Tdata",
            xs=list(orders),
        )
        for alg, setting in entries:
            label = f"{alg} {setting_label}"
            panel.add(label, sweep.values(f"{alg} {setting}", "tdata"))
        panel.add(
            "Lower Bound",
            [tdata_lower_bound(machine, d, d, d) for d in orders],
        )
        # Tradeoff IDEAL is also plotted on the paper's LRU panels
        # as the reference; keep panels self-contained instead.
        panels.append(panel)
    return Figure(
        id=fig_id,
        title=f"Overall data access time Tdata (CS={preset(shared_preset_keys[0]).cs})",
        caption="Tdata of all six algorithms under the LRU-50 and IDEAL "
        "settings, for the optimistic and pessimistic distributed-cache "
        "capacities.",
        panels=panels,
    )


def figure9(
    orders: Sequence[int] = DEFAULT_ORDERS,
    workers: int = 0,
    panels_filter: Optional[Sequence[str]] = None,
) -> Figure:
    """Fig. 9: Tdata, CS = 977 (q=32), CD ∈ {21, 16}."""
    return _tdata_figure(
        "fig9", ("q32", "q32-pessimistic"), orders, workers, panels_filter
    )


def figure10(
    orders: Sequence[int] = DEFAULT_ORDERS,
    workers: int = 0,
    panels_filter: Optional[Sequence[str]] = None,
) -> Figure:
    """Fig. 10: Tdata, CS = 245 (q=64), CD ∈ {6, 4}."""
    return _tdata_figure(
        "fig10", ("q64", "q64-pessimistic"), orders, workers, panels_filter
    )


def figure11(
    orders: Sequence[int] = DEFAULT_ORDERS,
    workers: int = 0,
    panels_filter: Optional[Sequence[str]] = None,
) -> Figure:
    """Fig. 11: Tdata, CS = 157 (q=80), CD ∈ {4, 3}."""
    return _tdata_figure(
        "fig11", ("q80", "q80-pessimistic"), orders, workers, panels_filter
    )


# ----------------------------------------------------------------------
# Figure 12: bandwidth-ratio sweep
# ----------------------------------------------------------------------
def figure12(
    order: int = DEFAULT_RATIO_ORDER,
    ratios: Sequence[float] = DEFAULT_RATIOS,
) -> Figure:
    """Fig. 12: Tdata vs r = σS/(σS+σD) for all six algorithms (IDEAL).

    The Tradeoff algorithm re-plans ``(α, β)`` at every ratio; at the
    extremes it must tie Shared Opt. (r→0) and Distributed Opt. (r→1).
    """
    panels: List[FigurePanel] = []
    panel_keys = iter("abcdef")
    for preset_key in (
        "q32",
        "q32-pessimistic",
        "q64",
        "q64-pessimistic",
        "q80",
        "q80-pessimistic",
    ):
        machine = preset(preset_key)
        sweep = ratio_sweep(_SIX_IDEAL, machine, ratios, order)
        panel = Panel(
            key=next(panel_keys),
            title=f"CS={machine.cs}, CD={machine.cd}",
            xlabel="r = sigmaS / (sigmaS + sigmaD)",
            ylabel="Tdata",
            xs=list(ratios),
        )
        for alg, setting in _SIX_IDEAL:
            panel.add(
                f"{alg} IDEAL", sweep.values(f"{alg} {setting}", "tdata")
            )
        panel.add(
            "Lower Bound",
            [
                tdata_lower_bound(
                    machine.with_bandwidth_ratio(r), order, order, order
                )
                for r in ratios
            ],
        )
        panels.append(panel)
    return Figure(
        id="fig12",
        title=f"Cache bandwidth impact on Tdata (order {order})",
        caption="Tradeoff tracks the best of Shared Opt. / Distributed "
        "Opt. across the whole bandwidth range; the plots cross over "
        "where distributed misses become predominant.",
        panels=panels,
    )


# ----------------------------------------------------------------------
# Extension figures (beyond the paper; see DESIGN.md X1–X2)
# ----------------------------------------------------------------------
def figure_lu(orders: Sequence[int] = (16, 24, 32, 40, 48)) -> Figure:
    """Extension: shared misses of the two LU schedules vs order.

    Right-looking (eager) vs left-looking (lazy) blocked LU on the q32
    preset under LRU-50 — the crossover behind
    ``benchmarks/bench_extension_lu.py``.
    """
    from repro.lu.runner import run_lu

    machine = preset("q32")
    panel = Panel(
        key="a",
        title=f"Blocked LU on {machine.name} (LRU-50)",
        xlabel="Matrix order (blocks)",
        ylabel="Shared cache misses MS",
        xs=list(orders),
    )
    for name in ("right-looking-lu", "left-looking-lu"):
        panel.add(name, [run_lu(name, machine, o, "lru-50").ms for o in orders])
    return Figure(
        id="ext-lu",
        title="Extension: eager vs lazy blocked LU",
        caption="The lazy schedule pins each block column while absorbing "
        "all pending updates (Maximum Reuse transposed to LU).",
        panels=[panel],
    )


def figure_nested(orders: Sequence[int] = (16, 32)) -> Figure:
    """Extension: per-level misses of nested vs flat on a 3-level tree."""
    from repro.algorithms.distributed_opt import DistributedOpt
    from repro.algorithms.nested import NestedMaxReuse
    from repro.sim.contexts import MultiLevelContext

    machine = MulticoreMachine(p=16, cs=400, cd=21, q=8, name="16-core/4-socket")
    panel = Panel(
        key="a",
        title=f"Socket-level misses on {machine.name}",
        xlabel="Matrix order (blocks)",
        ylabel="Socket cache misses (max)",
        xs=list(orders),
    )
    for label, cls in (
        ("nested-max-reuse", NestedMaxReuse),
        ("distributed-opt (flat)", DistributedOpt),
    ):
        values: List[float] = []
        for order in orders:
            nest = NestedMaxReuse(machine, order, order, order)
            tree = nest.default_tree()
            cls(machine, order, order, order).run(MultiLevelContext(tree))
            values.append(tree.level_misses(1))
        panel.add(label, values)
    return Figure(
        id="ext-nested",
        title="Extension: topology-aware placement on three levels",
        caption="Socket-contiguous block ownership captures A and B "
        "sharing inside each socket; LLC and core traffic are identical.",
        panels=[panel],
    )


#: Registry used by the CLI: figure id -> builder.
FIGURES: Dict[str, Callable[..., Figure]] = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "ext-lu": figure_lu,
    "ext-nested": figure_nested,
}


def get_figure(fig_id: str, **kwargs) -> Figure:
    """Build a figure by id (``"fig4"`` … ``"fig12"``)."""
    try:
        builder = FIGURES[fig_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {fig_id!r}; valid ids: {sorted(FIGURES)}"
        ) from None
    return builder(**kwargs)
