"""Single-level Maximum Reuse — the lineage the paper builds on (§3).

Before the multicore adaptation, the Maximum Reuse Algorithm was
formulated for master-worker platforms with *one* bounded local memory
[Pineau, Robert, Vivien, Dongarra 2008], improving on the equal-thirds
allocation of Toledo's out-of-core survey.  The paper's §3 recaps both;
this subpackage implements them as the paper states them, because the
multicore algorithms are direct products of this analysis:

* memory of ``M`` blocks split ``1 + µ + µ²`` (one element of ``A``, a
  ``µ`` row of ``B``, a ``µ×µ`` block of ``C``) →
  ``CCR → 2/√M`` for large matrices
  (:class:`~repro.singlelevel.schedules.SingleLevelMaxReuse`);
* memory split in three equal parts →
  ``CCR → 2√3/√M`` (:class:`~repro.singlelevel.schedules.SingleLevelEqual`).

Both run against :class:`~repro.singlelevel.memory.BoundedMemory` — a
strict, capacity-checked single cache counting master↔worker transfers
— and against the same numeric executor as the multicore schedules.
"""

from repro.singlelevel.memory import BoundedMemory
from repro.singlelevel.schedules import (
    SingleLevelEqual,
    SingleLevelMaxReuse,
    SINGLE_LEVEL_SCHEDULES,
)
from repro.singlelevel.runner import SingleLevelResult, run_single_level

__all__ = [
    "BoundedMemory",
    "SingleLevelMaxReuse",
    "SingleLevelEqual",
    "SINGLE_LEVEL_SCHEDULES",
    "SingleLevelResult",
    "run_single_level",
]
