"""The two single-level schedules of the paper's §3 recap.

Both emit explicit :class:`~repro.singlelevel.memory.BoundedMemory`
movements plus ``compute`` callbacks so the same schedule drives
counting and numeric execution (matching the multicore design).

* :class:`SingleLevelMaxReuse` — memory split ``1 + µ + µ²``: a ``µ×µ``
  block of ``C`` is pinned and fully accumulated ("stored back only
  when it has been processed entirely, thus avoiding any future need of
  reading this block"), with a ``µ`` fragment of a row of ``B`` and a
  single element of ``A`` streaming through.  Loads (divisible case):
  ``mn (C) + mnz/µ (B) + mnz/µ (A) = mn + 2mnz/µ`` → ``CCR → 2/√M``.
* :class:`SingleLevelEqual` — Toledo-style thirds, tile side
  ``t = ⌊√(M/3)⌋``: loads ``mn + 2mnz/t`` → ``CCR → 2√3/√M``.
"""

from __future__ import annotations

from typing import Any, Callable, ClassVar, Dict, Optional

from repro.cache.block import A_BASE, B_BASE, C_BASE, ROW_SHIFT
from repro.exceptions import ConfigurationError, ParameterError
from repro.model.params import max_square_param
from repro.singlelevel.memory import BoundedMemory

#: compute callback: (ckey, akey, bkey) -> None
ComputeFn = Callable[[int, int, int], None]


class SingleLevelSchedule:
    """Base class: a schedule over one bounded memory."""

    name: ClassVar[str] = "abstract-single"
    label: ClassVar[str] = "Abstract"

    def __init__(self, memory_blocks: int, m: int, n: int, z: int) -> None:
        if m < 1 or n < 1 or z < 1:
            raise ConfigurationError(
                f"matrix dimensions must be positive, got m={m}, n={n}, z={z}"
            )
        self.memory_blocks = memory_blocks
        self.m = m
        self.n = n
        self.z = z

    def parameters(self) -> Dict[str, Any]:
        return {}

    @property
    def comp_total(self) -> int:
        return self.m * self.n * self.z

    def run(self, memory: BoundedMemory, compute: Optional[ComputeFn] = None) -> None:
        raise NotImplementedError

    def predicted_loads(self) -> float:
        raise NotImplementedError


class SingleLevelMaxReuse(SingleLevelSchedule):
    """Maximum Reuse Algorithm of [7]: memory split ``1 + µ + µ²``."""

    name = "single-max-reuse"
    label = "Maximum Reuse (single level)"

    def __init__(
        self, memory_blocks: int, m: int, n: int, z: int, mu: Optional[int] = None
    ) -> None:
        super().__init__(memory_blocks, m, n, z)
        if mu is None:
            mu = max_square_param(memory_blocks)
        if mu < 1 or 1 + mu + mu * mu > memory_blocks:
            raise ParameterError(
                f"mu={mu} violates 1 + µ + µ² <= M={memory_blocks}"
            )
        self.mu = mu

    def parameters(self) -> Dict[str, Any]:
        return {"mu": self.mu}

    def predicted_loads(self) -> float:
        """``mn + 2mnz/µ`` (exact when ``µ`` divides ``m`` and ``n``)."""
        return self.m * self.n + 2 * self.m * self.n * self.z / self.mu

    def run(self, memory: BoundedMemory, compute: Optional[ComputeFn] = None) -> None:
        m, n, z, mu = self.m, self.n, self.z, self.mu
        RS = ROW_SHIFT
        for i0 in range(0, m, mu):
            hi = min(i0 + mu, m)
            for j0 in range(0, n, mu):
                wj = min(j0 + mu, n)
                # pin the C block
                for i in range(i0, hi):
                    crow = C_BASE | (i << RS)
                    for j in range(j0, wj):
                        memory.load(crow | j)
                for k in range(z):
                    brow = B_BASE | (k << RS)
                    for j in range(j0, wj):
                        memory.load(brow | j)
                    for i in range(i0, hi):
                        ka = A_BASE | (i << RS) | k
                        memory.load(ka)
                        crow = C_BASE | (i << RS)
                        for j in range(j0, wj):
                            kc = crow | j
                            if compute is not None:
                                compute(kc, ka, brow | j)
                            memory.mark_dirty(kc)
                        memory.evict(ka)
                    for j in range(j0, wj):
                        memory.evict(brow | j)
                # fully accumulated: write back once
                for i in range(i0, hi):
                    crow = C_BASE | (i << RS)
                    for j in range(j0, wj):
                        memory.evict(crow | j)


class SingleLevelEqual(SingleLevelSchedule):
    """Toledo-style equal thirds: tile side ``t = ⌊√(M/3)⌋``."""

    name = "single-equal"
    label = "Equal thirds (single level)"

    def __init__(
        self, memory_blocks: int, m: int, n: int, z: int, t: Optional[int] = None
    ) -> None:
        super().__init__(memory_blocks, m, n, z)
        if t is None:
            import math

            t = max(math.isqrt(memory_blocks // 3), 1)
        if t < 1 or 3 * t * t > memory_blocks:
            raise ParameterError(f"t={t} violates 3t² <= M={memory_blocks}")
        self.t = t

    def parameters(self) -> Dict[str, Any]:
        return {"t": self.t}

    def predicted_loads(self) -> float:
        """``mn + 2mnz/t`` (exact under divisibility)."""
        return self.m * self.n + 2 * self.m * self.n * self.z / self.t

    def run(self, memory: BoundedMemory, compute: Optional[ComputeFn] = None) -> None:
        m, n, z, t = self.m, self.n, self.z, self.t
        RS = ROW_SHIFT
        for i0 in range(0, m, t):
            hi = min(i0 + t, m)
            for j0 in range(0, n, t):
                wj = min(j0 + t, n)
                for i in range(i0, hi):
                    crow = C_BASE | (i << RS)
                    for j in range(j0, wj):
                        memory.load(crow | j)
                for k0 in range(0, z, t):
                    kh = min(k0 + t, z)
                    for i in range(i0, hi):
                        arow = A_BASE | (i << RS)
                        for k in range(k0, kh):
                            memory.load(arow | k)
                    for k in range(k0, kh):
                        brow = B_BASE | (k << RS)
                        for j in range(j0, wj):
                            memory.load(brow | j)
                    for i in range(i0, hi):
                        crow = C_BASE | (i << RS)
                        arow = A_BASE | (i << RS)
                        for k in range(k0, kh):
                            ka = arow | k
                            brow = B_BASE | (k << RS)
                            for j in range(j0, wj):
                                kc = crow | j
                                if compute is not None:
                                    compute(kc, ka, brow | j)
                                memory.mark_dirty(kc)
                    for i in range(i0, hi):
                        arow = A_BASE | (i << RS)
                        for k in range(k0, kh):
                            memory.evict(arow | k)
                    for k in range(k0, kh):
                        brow = B_BASE | (k << RS)
                        for j in range(j0, wj):
                            memory.evict(brow | j)
                for i in range(i0, hi):
                    crow = C_BASE | (i << RS)
                    for j in range(j0, wj):
                        memory.evict(crow | j)


#: Registry by stable name.
SINGLE_LEVEL_SCHEDULES = {
    cls.name: cls for cls in (SingleLevelMaxReuse, SingleLevelEqual)
}
