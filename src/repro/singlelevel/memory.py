"""A strict bounded memory for the master-worker model.

The worker holds at most ``capacity`` blocks; every block must be
explicitly loaded from the master (counted) and explicitly evicted to
make room.  Dirty evictions count write-backs.  Unlike the multicore
:class:`~repro.cache.hierarchy.IdealHierarchy`, there is only one
level, so this is deliberately minimal — and always checked (the
single-level algorithms are simple enough that tolerating overflow
would only hide bugs).
"""

from __future__ import annotations

from typing import Set

from repro.cache.block import MAT_SHIFT, key_name
from repro.exceptions import CapacityError, ConfigurationError, PresenceError


class BoundedMemory:
    """Explicitly managed worker memory of ``capacity`` blocks."""

    def __init__(self, capacity: int) -> None:
        if capacity < 3:
            raise ConfigurationError(
                f"memory must hold one block of each matrix, got {capacity}"
            )
        self.capacity = capacity
        self.resident: Set[int] = set()
        self.dirty: Set[int] = set()
        self.loads = 0
        self.loads_by_matrix = [0, 0, 0]
        self.writebacks = 0
        self.peak = 0

    def load(self, key: int) -> None:
        """Fetch one block from the master (counted once per call)."""
        if key in self.resident:
            return
        if len(self.resident) >= self.capacity:
            raise CapacityError(
                f"memory overflow loading {key_name(key)}: "
                f"{len(self.resident)}/{self.capacity} resident"
            )
        self.resident.add(key)
        self.loads += 1
        self.loads_by_matrix[key >> MAT_SHIFT] += 1
        if len(self.resident) > self.peak:
            self.peak = len(self.resident)

    def evict(self, key: int) -> None:
        """Drop one block; dirty blocks are sent back to the master."""
        if key in self.dirty:
            self.dirty.discard(key)
            self.writebacks += 1
        self.resident.discard(key)

    def mark_dirty(self, key: int) -> None:
        """Flag a resident block as modified."""
        if key not in self.resident:
            raise PresenceError(f"{key_name(key)} not resident")
        self.dirty.add(key)

    def assert_resident(self, *keys: int) -> None:
        """Presence check for a compute step's operands."""
        for key in keys:
            if key not in self.resident:
                raise PresenceError(
                    f"compute touches {key_name(key)} which is not resident"
                )

    @property
    def communication_volume(self) -> int:
        """Total master→worker transfers (the metric of [7])."""
        return self.loads
