"""Counting and verification runs for the single-level schedules."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Type, Union

import numpy as np

from repro.exceptions import ConfigurationError, ScheduleError
from repro.numerics.blockmatrix import BlockMatrix
from repro.numerics.kernels import block_fma
from repro.cache.block import decode_key
from repro.singlelevel.memory import BoundedMemory
from repro.singlelevel.schedules import (
    SINGLE_LEVEL_SCHEDULES,
    SingleLevelSchedule,
)


@dataclass
class SingleLevelResult:
    """Outcome of one single-level counting run."""

    schedule: str
    memory_blocks: int
    m: int
    n: int
    z: int
    parameters: Dict[str, Any]
    loads: int
    writebacks: int
    peak: int
    predicted_loads: float

    @property
    def ccr(self) -> float:
        """Communication-to-computation ratio (blocks per multiply-add)."""
        return self.loads / (self.m * self.n * self.z)

    def ccr_lower_bound(self) -> float:
        """The §2.3 bound specialized to one memory: ``√(27/(8M))``."""
        return math.sqrt(27.0 / (8.0 * self.memory_blocks))


def run_single_level(
    schedule: Union[str, Type[SingleLevelSchedule]],
    memory_blocks: int,
    m: int,
    n: int,
    z: int,
    **params: Any,
) -> SingleLevelResult:
    """Run one schedule against a checked bounded memory and count."""
    if isinstance(schedule, str):
        try:
            schedule = SINGLE_LEVEL_SCHEDULES[schedule]
        except KeyError:
            raise ConfigurationError(
                f"unknown single-level schedule {schedule!r}; valid: "
                f"{sorted(SINGLE_LEVEL_SCHEDULES)}"
            ) from None
    sched = schedule(memory_blocks, m, n, z, **params)
    memory = BoundedMemory(memory_blocks)
    comp = [0]

    def compute(ckey: int, akey: int, bkey: int) -> None:
        memory.assert_resident(ckey, akey, bkey)
        comp[0] += 1

    sched.run(memory, compute)
    if comp[0] != m * n * z:
        raise ScheduleError(
            f"{sched.name} emitted {comp[0]} multiply-adds, expected {m * n * z}"
        )
    return SingleLevelResult(
        schedule=sched.name,
        memory_blocks=memory_blocks,
        m=m,
        n=n,
        z=z,
        parameters=sched.parameters(),
        loads=memory.loads,
        writebacks=memory.writebacks,
        peak=memory.peak,
        predicted_loads=sched.predicted_loads(),
    )


def verify_single_level(
    schedule: SingleLevelSchedule, q: int = 3, seed: Optional[int] = 0
) -> None:
    """Numerically prove a single-level schedule computes ``A·B``."""
    a = BlockMatrix.random(schedule.m, schedule.z, q, seed)
    b = BlockMatrix.random(schedule.z, schedule.n, q, None if seed is None else seed + 1)
    c = BlockMatrix(schedule.m, schedule.n, q)
    memory = BoundedMemory(schedule.memory_blocks)

    def compute(ckey: int, akey: int, bkey: int) -> None:
        memory.assert_resident(ckey, akey, bkey)
        _, i, j = decode_key(ckey)
        _, ia, k = decode_key(akey)
        _, kb, jb = decode_key(bkey)
        if ia != i or kb != k or jb != j:
            raise ScheduleError("inconsistent single-level compute coordinates")
        block_fma(c.block(i, j), a.block(i, k), b.block(k, j))

    schedule.run(memory, compute)
    if not np.allclose(c.data, (a @ b).data):
        raise ScheduleError(f"{schedule.name} computed a wrong product")
